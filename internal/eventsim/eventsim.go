// Package eventsim provides a deterministic discrete-event simulation
// kernel: a nanosecond-resolution virtual clock, a stable-ordered event
// scheduler, and a seeded random number source.
//
// Every stochastic or time-dependent component in this repository
// (the RF medium, MAC state machines, power accounting, mobility)
// is driven from a single Scheduler so that experiments are exactly
// reproducible from a seed.
//
// # Queue structure
//
// Pending events live in a hierarchical timing wheel (a calendar
// queue): four levels of 256 slots whose level-0 tick is 1.024 µs, an
// exact (time, sequence)-ordered "due" heap for events inside the
// current tick, and an overflow heap for events beyond the wheel
// horizon (~1.2 simulated hours). Scheduling is O(1); the due heap is
// tiny because it only ever holds events of the current tick. Events
// with equal timestamps fire in scheduling order (FIFO tie-break via
// the sequence number) — the total order is identical to the retired
// binary-heap queue, which is retained behind NewSchedulerQueue as a
// differential-testing oracle.
//
// # Event pooling and cancellation semantics
//
// Event structs are recycled through a scheduler-owned free list, so
// steady-state schedule/fire/reschedule cycles allocate nothing.
// Schedule and friends therefore return a value-type Handle rather
// than a raw event pointer. Cancellation is an O(1) tombstone:
// Handle.Cancel marks the event dead in place and the queue is never
// restructured. Dead events are discarded — and their structs
// recycled — only when they surface at the head of the queue. A
// Handle is invalidated the moment its event fires or its tombstone
// is collected (a generation counter detects recycled structs), so
// holding a Handle past its event's lifetime is always safe:
// Cancel on a stale or zero Handle is a no-op and can never kill an
// unrelated, recycled event.
package eventsim

import (
	"errors"
	"fmt"
	"math/rand"
	"sync/atomic"
	"time"
)

// Time is a point in simulated time, measured in nanoseconds since the
// start of the simulation. It is deliberately distinct from time.Time:
// simulations never consult the wall clock.
type Time int64

// Common durations in simulation units.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Duration converts a standard library duration to simulation time.
func Duration(d time.Duration) Time { return Time(d.Nanoseconds()) }

// Std converts simulation time to a standard library duration.
func (t Time) Std() time.Duration { return time.Duration(t) }

// Seconds reports t as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Micros reports t as floating-point microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// String renders the time with microsecond precision, e.g. "1.234567s".
func (t Time) String() string {
	return fmt.Sprintf("%.6fs", t.Seconds())
}

// Event is a scheduled callback. Events compare by time, then by
// insertion sequence, so two events scheduled for the same instant run
// in the order they were scheduled. This stability is what makes the
// simulation deterministic.
//
// Event structs are pooled: once an event fires (or its cancellation
// tombstone is collected) the struct returns to the scheduler's free
// list and may be reused for a later event. External code never holds
// a *Event — it holds a Handle, whose generation check makes stale
// references inert.
type Event struct {
	at     Time
	seq    uint64
	fn     func()
	dead   bool
	gen    uint32
	origin Origin
	next   *Event // intrusive link: wheel slot chain or free list
}

// Handle refers to a scheduled event. The zero Handle refers to
// nothing; all methods on it are safe no-ops. Handles are values —
// copy them freely.
type Handle struct {
	e   *Event
	gen uint32
}

// Valid reports whether the handle still refers to a pending or
// pending-cancelled event. It turns false once the event fires or its
// tombstone is collected.
func (h Handle) Valid() bool { return h.e != nil && h.e.gen == h.gen }

// Cancel prevents a pending event from firing: an O(1) tombstone that
// is collected when the event surfaces at the head of the queue.
// Cancelling an event that already fired, was already cancelled, or a
// zero Handle is a no-op.
func (h Handle) Cancel() {
	if h.e != nil && h.e.gen == h.gen {
		h.e.dead = true
	}
}

// Cancelled reports whether the handle's event is tombstoned but not
// yet collected. Once the event fires or the tombstone is collected
// the handle is simply no longer Valid and Cancelled reports false.
func (h Handle) Cancelled() bool { return h.e != nil && h.e.gen == h.gen && h.e.dead }

// evHeap is a hand-rolled binary min-heap ordered by (at, seq) — the
// scheduler's total order. It backs the wheel's due heap, the wheel's
// overflow heap, and the legacy differential-oracle queue; avoiding
// container/heap keeps events out of interface boxes.
type evHeap []*Event

func (h evHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h *evHeap) push(e *Event) {
	*h = append(*h, e)
	q := *h
	i := len(q) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !q.less(i, p) {
			break
		}
		q[i], q[p] = q[p], q[i]
		i = p
	}
}

func (h *evHeap) pop() *Event {
	q := *h
	n := len(q)
	if n == 0 {
		return nil
	}
	top := q[0]
	n--
	q[0] = q[n]
	q[n] = nil
	q = q[:n]
	*h = q
	i := 0
	for { //politevet:allow simsleep(heap sift-down: each pass swaps toward a leaf and terminates in log n steps; no simulated time passes)
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && q.less(l, small) {
			small = l
		}
		if r < n && q.less(r, small) {
			small = r
		}
		if small == i {
			break
		}
		q[i], q[small] = q[small], q[i]
		i = small
	}
	return top
}

// evqueue is the pending-event structure behind a Scheduler. Both
// implementations surface events in exact (at, seq) order.
type evqueue interface {
	push(e *Event)
	min() *Event // next event without removing it; nil when empty
	popMin() *Event
}

// Timing-wheel geometry. Level k spans deltas in
// [2^(wheelBits·k), 2^(wheelBits·(k+1))) level-0 ticks; beyond the
// last level events wait in the overflow heap.
const (
	wheelTickBits = 10 // level-0 tick = 1.024 µs
	wheelBits     = 8
	wheelSlots    = 1 << wheelBits
	wheelMask     = wheelSlots - 1
	wheelLevels   = 4
	wheelWords    = wheelSlots / 64
)

// wheelQueue is the hierarchical timing wheel. btick is the cursor
// tick: every event in the slots has tick(at) > btick and every event
// in due has tick(at) <= btick, so the due heap's minimum is the
// global minimum. Slots hold unordered intrusive chains; per-level
// occupancy bitmaps let the cursor jump straight to the next occupied
// slot instead of stepping tick by tick.
type wheelQueue struct {
	btick    uint64
	due      evHeap
	overflow evHeap
	slots    [wheelLevels][wheelSlots]*Event
	occ      [wheelLevels][wheelWords]uint64
	count    [wheelLevels]int
	size     int // total events: due + slots + overflow
}

func (w *wheelQueue) push(e *Event) {
	w.size++
	t := uint64(e.at) >> wheelTickBits
	if t <= w.btick {
		w.due.push(e)
		return
	}
	w.place(e, t)
}

// place files a future event (tick t > btick) into the proper wheel
// level, or the overflow heap beyond the horizon.
func (w *wheelQueue) place(e *Event, t uint64) {
	d := t - w.btick
	for k := 0; k < wheelLevels; k++ {
		if d < uint64(1)<<(wheelBits*(k+1)) {
			shift := uint(wheelBits * k)
			slot := (t >> shift) & wheelMask
			e.next = w.slots[k][slot]
			w.slots[k][slot] = e
			w.occ[k][slot>>6] |= 1 << (slot & 63)
			w.count[k]++
			return
		}
	}
	w.overflow.push(e)
}

func (w *wheelQueue) min() *Event {
	for {
		if len(w.due) > 0 {
			return w.due[0]
		}
		if w.size == 0 {
			return nil
		}
		w.advance()
	}
}

func (w *wheelQueue) popMin() *Event {
	if w.min() == nil {
		return nil
	}
	w.size--
	return w.due.pop()
}

// scan finds the next occupied slot at level k after index ik,
// returning its wrap-aware distance (1..wheelSlots) and index. The
// caller guarantees count[k] > 0.
func (w *wheelQueue) scan(k int, ik uint64) (m, slot uint64) {
	occ := &w.occ[k]
	for off := uint64(1); off <= wheelSlots; off++ {
		s := (ik + off) & wheelMask
		if occ[s>>6]&(1<<(s&63)) != 0 {
			return off, s
		}
	}
	return 0, 0 // unreachable while count[k] > 0
}

// advance jumps the cursor to the earliest due slot across all levels
// (or the overflow horizon) and cascades that slot's events downward.
// A level-k slot's due tick is the start of its next occupied group
// (((btick>>shift)+m)<<shift for wrap distance m), which lower-bounds
// every tick stored there, so the cursor never passes a pending
// event; cascading re-files each event by its own tick, which also
// handles slots that mix a group with the one a rotation later.
func (w *wheelQueue) advance() {
	// First, drain current-group events parked in the cursor's own
	// slot at levels >= 1. That state is reachable when a lower
	// level's slot start ties with a higher-level group boundary: the
	// cursor enters the group without cascading the higher slot. scan
	// would misread such a slot as a full rotation away, so these
	// events must drop to finer levels before the cursor may move.
	// A slot can simultaneously hold events one rotation out (the
	// placement window spans 257 group starts at the boundary), so
	// only the current group's events are extracted.
	for k := 1; k < wheelLevels; k++ {
		if w.count[k] == 0 {
			continue
		}
		shift := uint(wheelBits * k)
		ik := (w.btick >> shift) & wheelMask
		if w.occ[k][ik>>6]&(1<<(ik&63)) == 0 {
			continue
		}
		g := w.btick >> shift
		var keep *Event
		moved := false
		e := w.slots[k][ik]
		w.slots[k][ik] = nil
		for e != nil {
			next := e.next
			if t := uint64(e.at) >> wheelTickBits; t>>shift == g {
				// Current group, tick > btick: re-place lands at a
				// strictly lower level (d < 2^(wheelBits*k)).
				e.next = nil
				w.count[k]--
				w.place(e, t)
				moved = true
			} else {
				e.next = keep
				keep = e
			}
			e = next
		}
		w.slots[k][ik] = keep
		if keep == nil {
			w.occ[k][ik>>6] &^= 1 << (ik & 63)
		}
		if moved {
			return // progress made; min() re-evaluates
		}
	}
	const inf = ^uint64(0)
	best := inf
	bestLevel := -1
	bestSlot := uint64(0)
	for k := 0; k < wheelLevels; k++ {
		if w.count[k] == 0 {
			continue
		}
		shift := uint(wheelBits * k)
		ik := (w.btick >> shift) & wheelMask
		m, slot := w.scan(k, ik)
		due := ((w.btick >> shift) + m) << shift
		if due < best {
			best, bestLevel, bestSlot = due, k, slot
		}
	}
	if len(w.overflow) > 0 {
		if ot := uint64(w.overflow[0].at) >> wheelTickBits; ot < best {
			// Jump to the overflow horizon and pull every event that
			// now fits back into the wheel.
			w.btick = ot
			for len(w.overflow) > 0 {
				t := uint64(w.overflow[0].at) >> wheelTickBits
				if t-w.btick >= uint64(1)<<(wheelBits*wheelLevels) {
					break
				}
				e := w.overflow.pop()
				if t <= w.btick {
					w.due.push(e)
				} else {
					w.place(e, t)
				}
			}
			return
		}
	}
	w.btick = best
	k, slot := bestLevel, bestSlot
	list := w.slots[k][slot]
	w.slots[k][slot] = nil
	w.occ[k][slot>>6] &^= 1 << (slot & 63)
	for e := list; e != nil; {
		next := e.next
		e.next = nil
		w.count[k]--
		if t := uint64(e.at) >> wheelTickBits; t <= w.btick {
			w.due.push(e)
		} else {
			w.place(e, t)
		}
		e = next
	}
}

// heapQueue is the retired binary-heap pending queue, kept solely as
// a differential-testing oracle for the timing wheel (see
// NewSchedulerQueue).
type heapQueue struct{ h evHeap }

func (q *heapQueue) push(e *Event) { q.h.push(e) }
func (q *heapQueue) min() *Event {
	if len(q.h) == 0 {
		return nil
	}
	return q.h[0]
}
func (q *heapQueue) popMin() *Event { return q.h.pop() }

// ErrStopped is returned by Run variants when Stop was called.
var ErrStopped = errors.New("eventsim: scheduler stopped")

// Scheduler is a single-threaded discrete-event executor. It is not
// safe for concurrent use; concurrent producers must funnel work
// through an external synchronisation layer (see package core's
// AirPort implementations).
type Scheduler struct {
	now     Time
	seq     uint64
	q       evqueue
	free    *Event // recycled Event structs, chained on Event.next
	pending int    // queued events, including uncollected tombstones
	stopped bool
	fired   uint64

	// Introspection: queue high-water mark, per-origin fired counts,
	// a race-free mirror of the clock, and an optional fire observer.
	highWater     int
	originNames   []string
	originIndex   map[string]Origin
	firedByOrigin []uint64
	nowAtomic     atomic.Int64
	observer      func(origin string, wall time.Duration)
	observeWall   bool
}

// Origin is an interned label identifying where an event was
// scheduled from ("radio.rx", "mac.ack", ...). Origin 0 is the
// untagged default. Interning keeps the per-event accounting to one
// slice increment on the hot path.
type Origin uint16

// QueueKind selects the pending-event structure behind a Scheduler.
type QueueKind uint8

const (
	// QueueWheel is the hierarchical timing wheel — the default.
	QueueWheel QueueKind = iota
	// QueueLegacyHeap is the retired binary-heap queue. It is kept
	// only as a differential-testing oracle: both queues realise the
	// same (time, sequence) total order, and the differential tests
	// assert that entire drives are byte-identical across the two.
	QueueLegacyHeap
)

// NewScheduler returns a scheduler whose clock starts at zero, backed
// by the timing wheel.
func NewScheduler() *Scheduler { return NewSchedulerQueue(QueueWheel) }

// NewSchedulerQueue returns a scheduler backed by an explicit queue
// kind. Production code uses NewScheduler; QueueLegacyHeap exists for
// wheel-vs-heap differential tests and benchmarks.
func NewSchedulerQueue(kind QueueKind) *Scheduler {
	s := &Scheduler{
		originNames:   []string{"untagged"},
		originIndex:   make(map[string]Origin),
		firedByOrigin: make([]uint64, 1),
	}
	if kind == QueueLegacyHeap {
		s.q = &heapQueue{}
	} else {
		s.q = &wheelQueue{}
	}
	return s
}

// alloc takes an Event struct from the free list, or mints one if the
// pool is dry. Steady-state schedule/fire cycles never mint.
func (s *Scheduler) alloc() *Event {
	if e := s.free; e != nil {
		s.free = e.next
		e.next = nil
		return e
	}
	return &Event{}
}

// recycle invalidates outstanding Handles (generation bump) and
// returns the struct to the free list.
func (s *Scheduler) recycle(e *Event) {
	e.gen++
	e.fn = nil
	e.dead = false
	e.next = s.free
	s.free = e
}

// Now reports the current simulated time.
func (s *Scheduler) Now() Time { return s.now }

// ObservedNow is a race-free snapshot of the virtual clock, readable
// from any goroutine without the simulation lock. It is updated as
// each event fires, so telemetry read from worker goroutines can
// stamp observations without deadlocking on an rt.Bridge.
func (s *Scheduler) ObservedNow() Time { return Time(s.nowAtomic.Load()) }

// Len reports the number of pending events. Cancelled events still
// occupy the queue until their tombstones surface, so this is an
// upper bound on live events.
func (s *Scheduler) Len() int { return s.pending }

// Fired reports how many events have executed so far.
func (s *Scheduler) Fired() uint64 { return s.fired }

// HighWater reports the maximum queue depth reached so far.
func (s *Scheduler) HighWater() int { return s.highWater }

// Origin interns a label for tagged scheduling. Repeated calls with
// the same name return the same Origin; layers cache the result at
// construction time.
func (s *Scheduler) Origin(name string) Origin {
	if o, ok := s.originIndex[name]; ok {
		return o
	}
	o := Origin(len(s.originNames))
	s.originIndex[name] = o
	s.originNames = append(s.originNames, name)
	s.firedByOrigin = append(s.firedByOrigin, 0)
	return o
}

// FiredByOrigin reports per-origin fired-event counts, including the
// "untagged" default bucket.
func (s *Scheduler) FiredByOrigin() map[string]uint64 {
	out := make(map[string]uint64, len(s.originNames))
	for i, n := range s.firedByOrigin {
		if n > 0 {
			out[s.originNames[i]] = n
		}
	}
	return out
}

// SetFireObserver installs a callback invoked after every executed
// event with the event's origin label. When measureWall is true the
// callback also receives the wall-clock duration of the event's
// function — per-callback-kind timing for profiling — at the cost of
// two clock reads per event; otherwise the duration is zero.
// A nil observer uninstalls.
func (s *Scheduler) SetFireObserver(obs func(origin string, wall time.Duration), measureWall bool) {
	s.observer = obs
	s.observeWall = measureWall
}

// Schedule runs fn at absolute time at. Scheduling in the past (or the
// present) runs the event at the current time, after already-queued
// events for that time.
func (s *Scheduler) Schedule(at Time, fn func()) Handle {
	return s.ScheduleTagged(0, at, fn)
}

// ScheduleTagged is Schedule with an origin label for the
// per-origin fired-event accounting.
func (s *Scheduler) ScheduleTagged(o Origin, at Time, fn func()) Handle {
	if at < s.now {
		at = s.now
	}
	e := s.alloc()
	e.at = at
	e.seq = s.seq
	e.fn = fn
	e.origin = o
	s.seq++
	s.q.push(e)
	s.pending++
	if s.pending > s.highWater {
		s.highWater = s.pending
	}
	return Handle{e: e, gen: e.gen}
}

// After runs fn after delay d.
func (s *Scheduler) After(d Time, fn func()) Handle {
	return s.Schedule(s.now+d, fn)
}

// AfterTagged is After with an origin label.
func (s *Scheduler) AfterTagged(o Origin, d Time, fn func()) Handle {
	return s.ScheduleTagged(o, s.now+d, fn)
}

// Every schedules fn to run now+d, then every d thereafter, until the
// returned ticker is stopped.
func (s *Scheduler) Every(d Time, fn func()) *Ticker {
	if d <= 0 {
		panic("eventsim: non-positive ticker period")
	}
	t := &Ticker{s: s, d: d, fn: fn}
	t.fire = func() {
		if t.stopped {
			return
		}
		t.fn()
		if !t.stopped {
			t.arm()
		}
	}
	t.arm()
	return t
}

// Ticker is a repeating event created by Every.
type Ticker struct {
	s       *Scheduler
	d       Time
	fn      func()
	fire    func() // allocated once; re-armed every period
	h       Handle
	stopped bool
}

// arm (re)schedules the ticker. The fire closure is allocated once at
// construction and the Event struct comes from the scheduler's pool,
// so each tick costs zero allocations in steady state.
func (t *Ticker) arm() {
	t.h = t.s.After(t.d, t.fire)
}

// Stop cancels future firings.
func (t *Ticker) Stop() {
	t.stopped = true
	t.h.Cancel()
}

// peek returns the next live event without removing it, collecting
// (and recycling) any cancellation tombstones that have surfaced at
// the head of the queue. This is the only point where tombstones are
// reclaimed; Cancel itself never touches the queue.
func (s *Scheduler) peek() *Event {
	for {
		e := s.q.min()
		if e == nil {
			return nil
		}
		if !e.dead {
			return e
		}
		s.q.popMin()
		s.pending--
		s.recycle(e)
	}
}

// Step executes the single next pending event, advancing the clock to
// its timestamp. It reports false when the queue is empty.
func (s *Scheduler) Step() bool {
	e := s.peek()
	if e == nil {
		return false
	}
	s.q.popMin()
	s.pending--
	s.now = e.at
	s.nowAtomic.Store(int64(e.at))
	s.fired++
	s.firedByOrigin[e.origin]++
	fn, origin := e.fn, e.origin
	// Recycle before firing: fn may schedule new events that reuse
	// this struct; any Handle to the fired event is already stale.
	s.recycle(e)
	if obs := s.observer; obs != nil {
		if s.observeWall {
			start := time.Now() //politevet:allow wallclock(opt-in per-event wall profiling behind SetFireObserver measureWall; never feeds sim state)
			fn()
			obs(s.originNames[origin], time.Since(start)) //politevet:allow wallclock(duration of the same profiling measurement)
		} else {
			fn()
			obs(s.originNames[origin], 0)
		}
	} else {
		fn()
	}
	return true
}

// RunUntil executes events until the clock would pass deadline, then
// sets the clock to the deadline. Events scheduled exactly at the
// deadline are executed.
func (s *Scheduler) RunUntil(deadline Time) error {
	for !s.stopped {
		e := s.peek()
		if e == nil || e.at > deadline {
			break
		}
		s.Step()
	}
	if s.stopped {
		return ErrStopped
	}
	if s.now < deadline {
		s.now = deadline
		s.nowAtomic.Store(int64(deadline))
	}
	return nil
}

// RunFor advances the simulation by d.
func (s *Scheduler) RunFor(d Time) error { return s.RunUntil(s.now + d) }

// Run executes events until the queue drains or Stop is called.
func (s *Scheduler) Run() error {
	for s.Step() {
		if s.stopped {
			return ErrStopped
		}
	}
	return nil
}

// Stop makes the currently running Run/RunUntil return ErrStopped
// after the current event completes.
func (s *Scheduler) Stop() { s.stopped = true }

// Resume clears a previous Stop so the scheduler can run again.
func (s *Scheduler) Resume() { s.stopped = false }

// RNG is the deterministic random source used throughout the
// simulator — the only sanctioned RNG entry point; politevet's
// globalrand analyzer enforces this. It wraps an explicit, privately
// owned *rand.Rand (never the package-global math/rand source) with
// the distributions the channel and mobility models need, so every
// draw in a run is a pure function of the seed: a single RNG is
// shared per simulation (or seed-forked per shard, see Fork) and
// replaying a seed replays the entire run. Every distribution helper
// below draws from that explicit source and from nothing else.
type RNG struct {
	r *rand.Rand
}

// NewRNG returns a deterministic generator for the given seed. This
// and (*RNG).Fork are the only places the simulator may mint a
// random source.
func NewRNG(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed))}
}

// Float64 returns a uniform sample in [0,1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Intn returns a uniform sample in [0,n).
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Int63 returns a non-negative pseudo-random 63-bit integer.
func (g *RNG) Int63() int64 { return g.r.Int63() }

// Normal returns a Gaussian sample with the given mean and standard
// deviation.
func (g *RNG) Normal(mean, stddev float64) float64 {
	return mean + stddev*g.r.NormFloat64()
}

// Exp returns an exponential sample with the given mean.
func (g *RNG) Exp(mean float64) float64 {
	return g.r.ExpFloat64() * mean
}

// Uniform returns a uniform sample in [lo,hi).
func (g *RNG) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*g.r.Float64()
}

// Coin returns true with probability p.
func (g *RNG) Coin(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return g.r.Float64() < p
}

// Shuffle permutes the first n elements using swap, Fisher-Yates style.
func (g *RNG) Shuffle(n int, swap func(i, j int)) { g.r.Shuffle(n, swap) }

// Fork derives an independent generator whose stream is a deterministic
// function of this generator's state. Useful for giving subsystems
// their own streams so adding draws in one subsystem does not perturb
// another.
func (g *RNG) Fork() *RNG {
	return NewRNG(g.r.Int63())
}
