package eventsim

import (
	"math/rand"
	"testing"
)

// TestWheelHeapDifferential drives the timing wheel and the retired
// binary heap with an identical randomized schedule/cancel/ticker
// workload and asserts the two produce the same firing sequence —
// same timestamps, same FIFO order among ties. Horizons span
// sub-tick deltas through overflow-heap territory.
func TestWheelHeapDifferential(t *testing.T) {
	for trial := 0; trial < 50; trial++ {
		var fired [2][]int
		scheds := [2]*Scheduler{
			NewSchedulerQueue(QueueLegacyHeap),
			NewSchedulerQueue(QueueWheel),
		}
		for w, s := range scheds {
			s := s
			w := w
			src := rand.New(rand.NewSource(int64(trial)*7919 + 1))
			id := 0
			var handles []Handle
			var step func()
			step = func() {
				// Each firing randomly schedules more work,
				// cancels something, or does nothing — the mix a
				// wardrive stop produces.
				for k := src.Intn(4); k > 0 && id < 4000; k-- {
					var d Time
					switch src.Intn(6) {
					case 0: // same-instant tie
						d = 0
					case 1: // sub-tick
						d = Time(src.Intn(1024))
					case 2: // level-0 horizon (SIFS/slot scale)
						d = Time(src.Intn(1 << 18))
					case 3: // level-1..2 horizon (beacon scale)
						d = Time(src.Intn(1 << 30))
					case 4: // level-3 horizon
						d = Time(src.Intn(1 << 40))
					default: // overflow territory
						d = Time(1<<42 + src.Intn(1<<43))
					}
					myid := id
					id++
					handles = append(handles, s.After(d, func() {
						fired[w] = append(fired[w], myid)
						step()
					}))
				}
				if len(handles) > 0 && src.Intn(3) == 0 {
					handles[src.Intn(len(handles))].Cancel()
				}
			}
			step()
			step()
			if err := s.RunUntil(2 << 43); err != nil {
				t.Fatal(err)
			}
		}
		if len(fired[0]) != len(fired[1]) {
			t.Fatalf("trial %d: heap fired %d events, wheel fired %d",
				trial, len(fired[0]), len(fired[1]))
		}
		for i := range fired[0] {
			if fired[0][i] != fired[1][i] {
				t.Fatalf("trial %d: firing order diverges at %d: heap=%d wheel=%d",
					trial, i, fired[0][i], fired[1][i])
			}
		}
	}
}
