// Package power models the energy consumption of a WiFi device as a
// function of its radio state machine, reproducing the measurement
// setup of the paper's §4.2 battery-drain experiment: per-state power
// draws integrated over simulated time, plus a per-frame host
// processing cost, and a battery model that converts mean power into
// expected lifetime.
package power

import (
	"fmt"
	"time"

	"politewifi/internal/eventsim"
	"politewifi/internal/mac"
	"politewifi/internal/radio"
)

// Profile is a device power profile: milliwatts per radio state and
// microjoules of host CPU work per processed frame.
type Profile struct {
	Name string
	// SleepMW is the doze-state draw (RTC + memory retention).
	SleepMW float64
	// IdleMW is the awake-and-listening draw. For small WiFi modules
	// the receiver runs whenever the radio is up, so this dominates.
	IdleMW float64
	// RxMW is the active-reception draw.
	RxMW float64
	// TxMW is the transmit draw at full power.
	TxMW float64
	// FrameOverheadUJ is the host-side energy to take an interrupt,
	// DMA the frame and run MAC processing, per frame.
	FrameOverheadUJ float64
}

// ESP8266 approximates the paper's target device: an Espressif
// ESP8266 module in station power-save mode. The values are
// calibrated to the paper's measurements (10 mW idle with power save,
// ~230 mW once the radio is pinned awake, ~360 mW at 900 fake
// frames/s) and bracketed by the module datasheet (RX 50–56 mA,
// TX up to 170 mA at 3.3 V, plus regulator losses).
var ESP8266 = Profile{
	Name:            "Espressif ESP8266",
	SleepMW:         1.8,
	IdleMW:          224.0,
	RxMW:            264.0,
	TxMW:            560.0,
	FrameOverheadUJ: 135.0,
}

// Generic is a laptop-class profile for comparative runs.
var Generic = Profile{
	Name:            "Generic client",
	SleepMW:         8,
	IdleMW:          350,
	RxMW:            420,
	TxMW:            900,
	FrameOverheadUJ: 40,
}

// Meter integrates a radio's energy use over simulated time.
type Meter struct {
	sched   *eventsim.Scheduler
	profile Profile

	start     eventsim.Time
	lastState radio.State
	lastAt    eventsim.Time

	stateTime map[radio.State]eventsim.Time
	energyUJ  float64
	frames    uint64
}

// NewMeter creates a meter; use Attach (or wire OnStateChange and
// AddFrame yourself) to connect it to a device.
func NewMeter(sched *eventsim.Scheduler, profile Profile) *Meter {
	now := sched.Now()
	return &Meter{
		sched:     sched,
		profile:   profile,
		start:     now,
		lastState: radio.StateIdle,
		lastAt:    now,
		stateTime: make(map[radio.State]eventsim.Time),
	}
}

// Attach wires the meter to a station: radio state transitions and
// per-frame host processing are charged automatically. The station's
// current radio state seeds the meter.
func Attach(st *mac.Station, profile Profile) *Meter {
	m := NewMeter(st.Radio.Medium().Sched, profile)
	m.lastState = st.Radio.State()
	st.Radio.OnStateChange(func(old, new radio.State, at eventsim.Time) {
		m.Transition(new, at)
	})
	st.OnUpperProcess = func(frameLen int) { m.AddFrame() }
	return m
}

func (m *Meter) powerOf(s radio.State) float64 {
	switch s {
	case radio.StateSleep:
		return m.profile.SleepMW
	case radio.StateRX:
		return m.profile.RxMW
	case radio.StateTX:
		return m.profile.TxMW
	default:
		return m.profile.IdleMW
	}
}

// Transition charges the elapsed interval at the old state's power
// and switches to the new state.
func (m *Meter) Transition(to radio.State, at eventsim.Time) {
	m.settle(at)
	m.lastState = to
}

// settle charges energy up to the given time.
func (m *Meter) settle(at eventsim.Time) {
	if at < m.lastAt {
		at = m.lastAt
	}
	dt := at - m.lastAt
	if dt > 0 {
		m.stateTime[m.lastState] += dt
		// mW × s = mJ; ×1000 = µJ.
		m.energyUJ += m.powerOf(m.lastState) * dt.Seconds() * 1000
		m.lastAt = at
	}
}

// AddFrame charges one frame's host processing overhead.
func (m *Meter) AddFrame() {
	m.frames++
	m.energyUJ += m.profile.FrameOverheadUJ
}

// EnergyMJ reports total consumed energy in millijoules up to now.
func (m *Meter) EnergyMJ() float64 {
	m.settle(m.sched.Now())
	return m.energyUJ / 1000
}

// MeanPowerMW reports the average power draw since the meter started
// (or since the last Reset).
func (m *Meter) MeanPowerMW() float64 {
	m.settle(m.sched.Now())
	elapsed := (m.sched.Now() - m.start).Seconds()
	if elapsed <= 0 {
		return 0
	}
	return m.energyUJ / 1000 / elapsed
}

// Frames reports the number of host-processed frames charged.
func (m *Meter) Frames() uint64 { return m.frames }

// StateSeconds reports the accumulated time in the given state.
func (m *Meter) StateSeconds(s radio.State) float64 {
	m.settle(m.sched.Now())
	return m.stateTime[s].Seconds()
}

// Reset zeroes the accumulators, starting a fresh measurement window
// from the current instant (the state machine position is kept).
func (m *Meter) Reset() {
	m.settle(m.sched.Now())
	m.start = m.sched.Now()
	m.lastAt = m.start
	m.energyUJ = 0
	m.frames = 0
	m.stateTime = make(map[radio.State]eventsim.Time)
}

// Battery converts capacity and draw into lifetime.
type Battery struct {
	Name        string
	CapacityMWh float64
}

// Security cameras from the paper's §4.2 lifetime analysis.
var (
	// LogitechCircle2 runs "up to 3 months" on a 2400 mWh battery.
	LogitechCircle2 = Battery{Name: "Logitech Circle 2", CapacityMWh: 2400}
	// BlinkXT2 runs "up to 2 years" on a 6000 mWh battery.
	BlinkXT2 = Battery{Name: "Amazon Blink XT2", CapacityMWh: 6000}
)

// Lifetime reports how long the battery lasts at a constant draw.
func (b Battery) Lifetime(drawMW float64) time.Duration {
	if drawMW <= 0 {
		return time.Duration(1<<63 - 1)
	}
	hours := b.CapacityMWh / drawMW
	return time.Duration(hours * float64(time.Hour))
}

// LifetimeHours is Lifetime in fractional hours, convenient for the
// experiment tables.
func (b Battery) LifetimeHours(drawMW float64) float64 {
	if drawMW <= 0 {
		return 0
	}
	return b.CapacityMWh / drawMW
}

// String implements fmt.Stringer.
func (b Battery) String() string {
	return fmt.Sprintf("%s (%.0f mWh)", b.Name, b.CapacityMWh)
}
