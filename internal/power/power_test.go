package power

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"politewifi/internal/dot11"
	"politewifi/internal/eventsim"
	"politewifi/internal/mac"
	"politewifi/internal/phy"
	"politewifi/internal/radio"
)

func newMeterEnv() (*eventsim.Scheduler, *Meter) {
	sched := eventsim.NewScheduler()
	m := NewMeter(sched, Profile{
		Name: "test", SleepMW: 1, IdleMW: 100, RxMW: 200, TxMW: 400, FrameOverheadUJ: 50,
	})
	return sched, m
}

func TestMeterStateIntegration(t *testing.T) {
	sched, m := newMeterEnv()
	// 1 s idle, 1 s RX, 1 s TX, 1 s sleep.
	sched.RunFor(eventsim.Second)
	m.Transition(radio.StateRX, sched.Now())
	sched.RunFor(eventsim.Second)
	m.Transition(radio.StateTX, sched.Now())
	sched.RunFor(eventsim.Second)
	m.Transition(radio.StateSleep, sched.Now())
	sched.RunFor(eventsim.Second)

	wantMJ := 100.0 + 200 + 400 + 1 // mW × 1 s each
	if got := m.EnergyMJ(); math.Abs(got-wantMJ) > 1e-6 {
		t.Fatalf("EnergyMJ = %v, want %v", got, wantMJ)
	}
	if got := m.MeanPowerMW(); math.Abs(got-wantMJ/4) > 1e-6 {
		t.Fatalf("MeanPowerMW = %v, want %v", got, wantMJ/4)
	}
	for s, want := range map[radio.State]float64{
		radio.StateIdle: 1, radio.StateRX: 1, radio.StateTX: 1, radio.StateSleep: 1,
	} {
		if got := m.StateSeconds(s); math.Abs(got-want) > 1e-9 {
			t.Fatalf("StateSeconds(%v) = %v, want %v", s, got, want)
		}
	}
}

func TestMeterFrameOverhead(t *testing.T) {
	sched, m := newMeterEnv()
	sched.RunFor(eventsim.Second)
	for i := 0; i < 100; i++ {
		m.AddFrame()
	}
	// 100 frames × 50 µJ = 5 mJ on top of 100 mJ idle.
	if got := m.EnergyMJ(); math.Abs(got-105) > 1e-6 {
		t.Fatalf("EnergyMJ = %v, want 105", got)
	}
	if m.Frames() != 100 {
		t.Fatalf("Frames = %d", m.Frames())
	}
}

func TestMeterReset(t *testing.T) {
	sched, m := newMeterEnv()
	sched.RunFor(eventsim.Second)
	m.AddFrame()
	m.Reset()
	if m.EnergyMJ() != 0 || m.Frames() != 0 {
		t.Fatal("Reset did not zero accumulators")
	}
	sched.RunFor(2 * eventsim.Second)
	if got := m.MeanPowerMW(); math.Abs(got-100) > 1e-6 {
		t.Fatalf("post-reset mean = %v, want 100 (idle)", got)
	}
}

func TestMeterZeroElapsed(t *testing.T) {
	_, m := newMeterEnv()
	if m.MeanPowerMW() != 0 {
		t.Fatal("mean power with zero elapsed should be 0")
	}
}

// Property: energy is nonnegative and nondecreasing in time.
func TestEnergyMonotoneProperty(t *testing.T) {
	f := func(steps []uint8) bool {
		sched, m := newMeterEnv()
		states := []radio.State{radio.StateSleep, radio.StateIdle, radio.StateRX, radio.StateTX}
		prev := 0.0
		for _, s := range steps {
			sched.RunFor(eventsim.Time(s) * eventsim.Millisecond)
			m.Transition(states[int(s)%len(states)], sched.Now())
			e := m.EnergyMJ()
			if e < prev-1e-9 {
				return false
			}
			prev = e
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestBatteryLifetime(t *testing.T) {
	// The paper's §4.2 arithmetic: at 360 mW the Circle 2 (2400 mWh)
	// lasts ~6.7 h and the Blink XT2 (6000 mWh) ~16.7 h.
	if got := LogitechCircle2.LifetimeHours(360); math.Abs(got-6.67) > 0.01 {
		t.Fatalf("Circle 2 lifetime = %v h, want ~6.67", got)
	}
	if got := BlinkXT2.LifetimeHours(360); math.Abs(got-16.67) > 0.01 {
		t.Fatalf("Blink XT2 lifetime = %v h, want ~16.67", got)
	}
	if d := LogitechCircle2.Lifetime(2400); d != time.Hour {
		t.Fatalf("Lifetime = %v, want 1h", d)
	}
	if LogitechCircle2.Lifetime(0) < 100*365*24*time.Hour {
		t.Fatal("zero draw should be effectively infinite")
	}
	if LogitechCircle2.LifetimeHours(0) != 0 {
		t.Fatal("LifetimeHours(0) should be 0 sentinel")
	}
	if LogitechCircle2.String() == "" || BlinkXT2.String() == "" {
		t.Fatal("battery strings empty")
	}
}

// TestAttachedMeterIdleBaseline: a power-saving ESP8266 with no
// attack traffic should sit near the paper's 10 mW baseline.
func TestAttachedMeterIdleBaseline(t *testing.T) {
	sched := eventsim.NewScheduler()
	rng := eventsim.NewRNG(9)
	med := radio.NewMedium(sched, rng, radio.Config{
		PathLoss: radio.LogDistance{Exponent: 2.0},
	})
	ap := mac.New(med, rng, mac.Config{
		Name: "ap", Addr: dot11.MustMAC("f2:6e:0b:00:00:01"), Role: mac.RoleAP,
		Profile: mac.ProfileGenericAP, SSID: "iot", Passphrase: "passpasspass",
		Position: radio.Position{}, Band: phy.Band2GHz, Channel: 6,
	})
	_ = ap
	victim := mac.New(med, rng, mac.Config{
		Name: "esp", Addr: dot11.MustMAC("ec:fa:bc:00:00:02"), Role: mac.RoleClient,
		Profile: mac.ProfileESP8266, SSID: "iot", Passphrase: "passpasspass",
		Position: radio.Position{X: 4}, Band: phy.Band2GHz, Channel: 6,
	})
	ok := false
	victim.Associate(dot11.MustMAC("f2:6e:0b:00:00:01"), func(v bool) { ok = v })
	sched.RunFor(300 * eventsim.Millisecond)
	if !ok {
		t.Fatal("association failed")
	}
	victim.EnablePowerSave()
	sched.RunFor(500 * eventsim.Millisecond) // let it settle into dozing

	meter := Attach(victim, ESP8266)
	meter.Reset()
	sched.RunFor(20 * eventsim.Second)
	mean := meter.MeanPowerMW()
	if mean < 3 || mean > 25 {
		t.Fatalf("idle PS baseline = %.1f mW, want ~10 mW", mean)
	}
	// Mostly asleep.
	if meter.StateSeconds(radio.StateSleep) < 15 {
		t.Fatalf("sleep time = %.1f s of 20, want most", meter.StateSeconds(radio.StateSleep))
	}
}

func TestProfilesSane(t *testing.T) {
	for _, p := range []Profile{ESP8266, Generic} {
		if p.SleepMW <= 0 || p.SleepMW >= p.IdleMW {
			t.Fatalf("%s: sleep power ordering wrong", p.Name)
		}
		if p.IdleMW > p.RxMW || p.RxMW > p.TxMW {
			t.Fatalf("%s: state power ordering wrong", p.Name)
		}
	}
}
