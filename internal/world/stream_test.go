package world

import (
	"bytes"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"politewifi/internal/eventsim"
	"politewifi/internal/faults"
	"politewifi/internal/telemetry"
	"politewifi/internal/telemetry/stream"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// streamTestFaults degrades the channel enough to exercise every
// verdict path and the sampled fault instruments in the stream.
func streamTestFaults() *faults.Config {
	return &faults.Config{
		PGoodBad: 0.1, PBadGood: 0.3, LossGood: 0.02, LossBad: 0.4,
		ACKLoss: 0.2,
	}
}

// TestStreamByteIdenticalAcrossWorkers is the flight recorder's core
// guarantee: the NDJSON byte stream of a fixed seed is identical at
// every worker count, because records are emitted in stop-index order
// no matter which worker finished which stop when. Run under -race in
// CI, this also exercises the ordered merge path for data races.
func TestStreamByteIdenticalAcrossWorkers(t *testing.T) {
	for _, faulted := range []bool{false, true} {
		name := "pristine"
		if faulted {
			name = "faulted"
		}
		t.Run(name, func(t *testing.T) {
			run := func(workers int) (*Result, []byte, *telemetry.Registry) {
				cfg := parallelTestConfig()
				cfg.Workers = workers
				cfg.Metrics = telemetry.NewRegistry(nil)
				if faulted {
					cfg.Faults = streamTestFaults()
				}
				var buf bytes.Buffer
				cfg.Stream = stream.NewWriter(&buf)
				res := Run(cfg)
				if err := cfg.Stream.Err(); err != nil {
					t.Fatalf("stream writer error: %v", err)
				}
				return res, buf.Bytes(), cfg.Metrics
			}
			resSeq, seq, regSeq := run(1)
			resPar, par, _ := run(4)
			if !reflect.DeepEqual(resSeq, resPar) {
				t.Fatal("census diverged between worker counts")
			}
			if !bytes.Equal(seq, par) {
				t.Fatalf("stream bytes differ between Workers:1 and Workers:4 (%d vs %d bytes)",
					len(seq), len(par))
			}

			// Fold-equals-snapshot: restoring and merging every per-stop
			// delta must rebuild the final registry exactly.
			fold, err := stream.Fold(bytes.NewReader(seq))
			if err != nil {
				t.Fatal(err)
			}
			if fold.Records != resSeq.Stops || fold.Stops != resSeq.Stops {
				t.Fatalf("fold saw %d/%d records, drive had %d stops",
					fold.Records, fold.Stops, resSeq.Stops)
			}
			wantTotals := stream.Census{
				Clients: resSeq.ClientsDiscovered, APs: resSeq.APsDiscovered,
				ClientsResponded: resSeq.ClientsResponded, APsResponded: resSeq.APsResponded,
				Silent:       len(resSeq.NonResponders) - resSeq.Inconclusive,
				Inconclusive: resSeq.Inconclusive,
			}
			if fold.Totals != wantTotals {
				t.Fatalf("folded census %+v != drive census %+v", fold.Totals, wantTotals)
			}
			var folded, final bytes.Buffer
			if err := fold.Registry.Snapshot().WriteJSON(&folded); err != nil {
				t.Fatal(err)
			}
			if err := regSeq.Snapshot().WriteJSON(&final); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(folded.Bytes(), final.Bytes()) {
				t.Fatalf("folded stream deltas != final snapshot:\nfolded:\n%s\nfinal:\n%s",
					folded.String(), final.String())
			}
		})
	}
}

// TestStreamGolden pins the exact NDJSON bytes of a small seeded
// drive. Regenerate with: go test ./internal/world -run StreamGolden -update
func TestStreamGolden(t *testing.T) {
	cfg := Config{
		Seed:              7,
		Scale:             0.008,
		HouseholdsPerStop: 8,
		DwellPerChannel:   400 * eventsim.Millisecond,
		VehicleSpeedKmh:   40,
		Workers:           2,
	}
	cfg.Metrics = telemetry.NewRegistry(nil)
	var buf bytes.Buffer
	cfg.Stream = stream.NewWriter(&buf)
	Run(cfg)

	golden := filepath.Join("testdata", "stream_golden.ndjson")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("stream diverged from golden (%d vs %d bytes); if the schema or "+
			"telemetry intentionally changed, regenerate with -update",
			buf.Len(), len(want))
	}
}

// failAfter errors once n bytes have been written — a consumer that
// hangs up mid-stream.
type failAfter struct {
	n       int
	written int
}

var errConsumerGone = errors.New("consumer disconnected")

func (f *failAfter) Write(p []byte) (int, error) {
	if f.written >= f.n {
		return 0, errConsumerGone
	}
	f.written += len(p)
	return len(p), nil
}

// TestStreamConsumerDisconnect severs the stream partway through the
// drive and asserts the census is unaffected: the writer latches the
// error and the drive finishes as if untapped.
func TestStreamConsumerDisconnect(t *testing.T) {
	cfg := parallelTestConfig()
	cfg.Workers = 3
	want := Run(cfg)

	cfg2 := parallelTestConfig()
	cfg2.Workers = 3
	sink := &failAfter{n: 4096}
	cfg2.Stream = stream.NewWriter(sink)
	got := Run(cfg2)

	if !errors.Is(cfg2.Stream.Err(), errConsumerGone) {
		t.Fatalf("writer error = %v, want consumer disconnect", cfg2.Stream.Err())
	}
	if cfg2.Stream.Count() == 0 {
		t.Fatal("disconnect fired before any record was written; raise failAfter.n")
	}
	if cfg2.Stream.Count() >= want.Stops {
		t.Fatal("disconnect never fired; lower failAfter.n")
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("mid-stream disconnect changed the drive result")
	}
}

// TestProgressOrdered asserts the progress hook sees every stop
// exactly once, in order, with a monotone census, at any worker
// count.
func TestProgressOrdered(t *testing.T) {
	cfg := parallelTestConfig()
	cfg.Workers = 4
	var seen []Progress
	cfg.Progress = func(p Progress) { seen = append(seen, p) }
	res := Run(cfg)
	if len(seen) != res.Stops {
		t.Fatalf("progress fired %d times for %d stops", len(seen), res.Stops)
	}
	prevDevices := -1
	for i, p := range seen {
		if p.Stop != i+1 || p.Stops != res.Stops {
			t.Fatalf("progress[%d] = %+v, want Stop=%d Stops=%d", i, p, i+1, res.Stops)
		}
		if p.Devices < prevDevices {
			t.Fatalf("device count went backwards at stop %d", p.Stop)
		}
		prevDevices = p.Devices
	}
	last := seen[len(seen)-1]
	if last.Devices != res.Total() || last.Responded != res.TotalResponded() {
		t.Fatalf("final progress %+v disagrees with result (%d devices, %d responded)",
			last, res.Total(), res.TotalResponded())
	}
}
