// Package world builds and drives the large-scale measurement study
// of the paper's §3: a city populated with access points and client
// devices drawn from the exact vendor census of Table 2, and a
// vehicle-mounted attacker that discovers every device, probes it
// with fake frames, and verifies the acknowledgements.
//
// Scale substitution (documented per DESIGN.md): a city-sized RF
// simulation with 5,328 concurrently beaconing radios would spend
// almost all its events on beacons nobody can hear. Because WiFi
// range (~100 m) is tiny compared to the drive (~tens of km),
// non-overlapping neighbourhoods are RF-independent; the drive is
// therefore executed as a sequence of stops, each simulated with its
// own medium containing just the local households plus the attacker.
// The paper's per-device experiment (discover → inject → verify ACK)
// is bit-identical inside each neighbourhood.
package world

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"politewifi/internal/arena"
	"politewifi/internal/core"
	"politewifi/internal/dot11"
	"politewifi/internal/eventsim"
	"politewifi/internal/faults"
	"politewifi/internal/mac"
	"politewifi/internal/oui"
	"politewifi/internal/phy"
	"politewifi/internal/radio"
	"politewifi/internal/replay"
	"politewifi/internal/telemetry"
	"politewifi/internal/telemetry/stream"
)

// Spec describes one device to be instantiated when the vehicle is
// nearby.
type Spec struct {
	MAC     dot11.MAC
	Vendor  string
	IsAP    bool
	SSID    string
	Profile mac.ChipsetProfile
	Offset  radio.Position // relative to the household
}

// Household is one building: an AP and the client devices audible
// around it.
type Household struct {
	Pos        radio.Position
	Band       phy.Band
	Channel    int
	Passphrase string
	AP         Spec
	Clients    []Spec
}

// City is the full population plus its street layout.
type City struct {
	Households []Household
	DB         *oui.DB

	// TotalAPs and TotalClients record the built population size.
	TotalAPs, TotalClients int
}

// scanPlan is the dual-band hop sequence the attacker's dongle walks
// at each stop: the non-overlapping 2.4 GHz channels plus two common
// 5 GHz channels (where ACKs ride a 16 µs SIFS instead of 10 µs).
type bandChannel struct {
	band    phy.Band
	channel int
}

var scanPlan = []bandChannel{
	{phy.Band2GHz, 1}, {phy.Band2GHz, 6}, {phy.Band2GHz, 11},
	{phy.Band5GHz, 36}, {phy.Band5GHz, 149},
}

// wifiChannels are the usual non-overlapping 2.4 GHz channels.
var wifiChannels = []int{1, 6, 11}

// fiveGHzChannels are the 5 GHz channels households may use.
var fiveGHzChannels = []int{36, 149}

// clientProfiles rotates chipset behaviour across the population so
// the study exercises every profile (including deauthing APs).
var apProfiles = []mac.ChipsetProfile{
	mac.ProfileGenericAP,
	mac.ProfileQualcommIPQ4019, // the deauth-on-unknown firmware
	mac.ProfileGenericAP,
}

var clientProfiles = []mac.ChipsetProfile{
	mac.ProfileGenericClient,
	mac.ProfileIntelAC3160,
	mac.ProfileMurataKM5D18098,
	mac.ProfileESP8266,
	mac.ProfileAtheros,
}

// BuildCity creates a city whose AP and client populations follow the
// Table 2 vendor census scaled by scale (1.0 = the paper's exact
// 3,805 APs and 1,523 clients). Households line a serpentine street
// grid, spaced ~25 m apart. A small fraction of networks are WPA2
// (the ACK behaviour is identical; open networks keep the key
// derivation cost of a 5,000-device build manageable).
func BuildCity(rng *eventsim.RNG, scale float64) *City {
	db := oui.NewDB()
	city := &City{DB: db}

	scaleCensus := func(entries []oui.CensusEntry) []oui.CensusEntry {
		if scale >= 1 {
			return entries
		}
		var out []oui.CensusEntry
		for _, e := range entries {
			n := int(float64(e.Count)*scale + 0.5)
			if n > 0 {
				out = append(out, oui.CensusEntry{Vendor: e.Vendor, Count: n})
			}
		}
		return out
	}

	apCensus := scaleCensus(oui.APCensus())
	clientCensus := scaleCensus(oui.ClientCensus())

	// Mint one household per AP, placed along a serpentine grid.
	seen := make(map[dot11.MAC]bool)
	mint := func(vendor string) dot11.MAC {
		for {
			m := db.MintMAC(vendor, rng)
			if !seen[m] {
				seen[m] = true
				return m
			}
		}
	}

	idx := 0
	const spacing = 25.0 // meters between households
	const rowLen = 200   // households per street
	for _, e := range apCensus {
		for i := 0; i < e.Count; i++ {
			row := idx / rowLen
			col := idx % rowLen
			if row%2 == 1 {
				col = rowLen - 1 - col // serpentine
			}
			h := Household{
				Pos:  radio.Position{X: float64(col) * spacing, Y: float64(row) * spacing * 4},
				Band: phy.Band2GHz,
				AP: Spec{
					MAC:     mint(e.Vendor),
					Vendor:  e.Vendor,
					IsAP:    true,
					SSID:    fmt.Sprintf("%s-%04x", e.Vendor, idx&0xffff),
					Profile: apProfiles[idx%len(apProfiles)],
				},
			}
			if rng.Coin(0.25) {
				// A quarter of households run 5 GHz networks.
				h.Band = phy.Band5GHz
				h.Channel = fiveGHzChannels[rng.Intn(len(fiveGHzChannels))]
			} else {
				h.Channel = wifiChannels[rng.Intn(len(wifiChannels))]
			}
			if rng.Coin(0.05) {
				h.Passphrase = "household passphrase"
			}
			city.Households = append(city.Households, h)
			city.TotalAPs++
			idx++
		}
	}

	// Scatter clients over households.
	hi := 0
	ci := 0
	for _, e := range clientCensus {
		for i := 0; i < e.Count; i++ {
			h := &city.Households[hi%len(city.Households)]
			hi += 1 + rng.Intn(3)
			h.Clients = append(h.Clients, Spec{
				MAC:     mint(e.Vendor),
				Vendor:  e.Vendor,
				SSID:    h.AP.SSID,
				Profile: clientProfiles[ci%len(clientProfiles)],
				Offset: radio.Position{
					X: rng.Uniform(-8, 8), Y: rng.Uniform(-8, 8), Z: rng.Uniform(0, 2),
				},
			})
			ci++
			city.TotalClients++
		}
	}
	return city
}

// Stop is one vehicle stop: the households audible from there.
type Stop struct {
	Pos        radio.Position
	Households []*Household
}

// Stops partitions the city into neighbourhood stops of at most
// perStop households each, returning them in street order. The stop
// position is the centroid of its households.
func (c *City) Stops(perStop int) []Stop {
	if perStop < 1 {
		perStop = 1
	}
	var stops []Stop
	for i := 0; i < len(c.Households); i += perStop {
		j := i + perStop
		if j > len(c.Households) {
			j = len(c.Households)
		}
		var s Stop
		for k := i; k < j; k++ {
			s.Households = append(s.Households, &c.Households[k])
			s.Pos.X += c.Households[k].Pos.X
			s.Pos.Y += c.Households[k].Pos.Y
		}
		n := float64(len(s.Households))
		s.Pos.X /= n
		s.Pos.Y /= n
		s.Pos.Z = 1.8 // roof-mounted dongle
		stops = append(stops, s)
	}
	return stops
}

// DeviceOutcome records the verdict for one device after the drive.
type DeviceOutcome struct {
	Spec      Spec
	Probes    int
	Acks      int
	Responded bool
	// Verdict is the scanner's three-state outcome for the device.
	Verdict core.Verdict
}

// Result accumulates the wardrive study.
type Result struct {
	ClientVendors map[string]int // vendor → responding client devices
	APVendors     map[string]int // vendor → responding APs

	ClientsDiscovered, APsDiscovered int
	ClientsResponded, APsResponded   int

	// Inconclusive counts discovered devices whose verdict was tainted
	// by channel faults (lossy or contended probes, starved budgets).
	// Faulted records whether the run injected channel faults at all;
	// renderers use it to keep pristine-run output byte-identical.
	Inconclusive int
	Faulted      bool

	// Cancelled reports that a cooperative stop (Config.Cancel) ended
	// the drive early. The result is still well formed: it covers the
	// contiguous prefix of stops that finished merging, exactly the
	// prefix a sequential drive of StopsDone stops would produce.
	Cancelled bool
	// StopsDone is the index one past the last merged stop — equal to
	// Stops when the drive ran to completion, smaller when cancelled.
	// It is the StartStop a resumed drive continues from.
	StopsDone int

	// NonResponders is ordered deterministically: by stop index in
	// street order, then by device instantiation order within the stop
	// (AP first, then clients, household by household). The ordering
	// is identical for every Workers setting and every replay of the
	// same seed.
	NonResponders []DeviceOutcome

	Stops        int
	SimPerStop   eventsim.Time
	DriveMinutes float64 // modelled wall time of the drive
}

// Total reports all discovered devices.
func (r *Result) Total() int { return r.ClientsDiscovered + r.APsDiscovered }

// TotalResponded reports all devices that acknowledged fake frames.
func (r *Result) TotalResponded() int { return r.ClientsResponded + r.APsResponded }

// StreamTotals expresses the result's census in the flight recorder's
// verdict buckets — the Totals a stream record covering exactly this
// result's stops would carry. It is the priming value for resuming a
// cancelled drive (Config.ResumeTotals).
func (r *Result) StreamTotals() stream.Census {
	return stream.Census{
		Clients:          r.ClientsDiscovered,
		APs:              r.APsDiscovered,
		ClientsResponded: r.ClientsResponded,
		APsResponded:     r.APsResponded,
		Silent:           len(r.NonResponders) - r.Inconclusive,
		Inconclusive:     r.Inconclusive,
	}
}

// Merge folds the result of a resumed drive into r. next must come
// from a Run with the same spec and StartStop = r.StopsDone: r covers
// stops [0, r.StopsDone), next covers [r.StopsDone, next.StopsDone),
// and because NonResponders and vendor counts accumulate in street
// order in both runs, the merged result is field-for-field identical
// to the result of the drive that was never cancelled.
func (r *Result) Merge(next *Result) {
	for v, n := range next.ClientVendors {
		r.ClientVendors[v] += n
	}
	for v, n := range next.APVendors {
		r.APVendors[v] += n
	}
	r.ClientsDiscovered += next.ClientsDiscovered
	r.APsDiscovered += next.APsDiscovered
	r.ClientsResponded += next.ClientsResponded
	r.APsResponded += next.APsResponded
	r.Inconclusive += next.Inconclusive
	r.NonResponders = append(r.NonResponders, next.NonResponders...)
	r.Faulted = r.Faulted || next.Faulted
	// The continuation owns the drive's fate and the route-wide
	// figures (both runs model the identical full route).
	r.Cancelled = next.Cancelled
	r.StopsDone = next.StopsDone
	r.Stops = next.Stops
	r.SimPerStop = next.SimPerStop
	r.DriveMinutes = next.DriveMinutes
}

// Config parameterises a wardrive run.
type Config struct {
	Seed int64
	// Scale scales the Table 2 census (1.0 = full 5,328 devices).
	Scale float64
	// HouseholdsPerStop bounds the per-stop medium size.
	HouseholdsPerStop int
	// DwellPerChannel is the simulated scan time per channel per stop.
	DwellPerChannel eventsim.Time
	// VehicleSpeedKmh models the drive duration between stops.
	VehicleSpeedKmh float64
	// Workers bounds the worker pool that simulates stops. Stops are
	// RF-independent neighbourhoods (see the package doc), so they
	// can run concurrently; results and telemetry are merged in stop
	// order afterwards, making the output identical for every worker
	// count. 0 means GOMAXPROCS; 1 forces a sequential drive.
	Workers int
	// Faults, when non-nil and enabled, injects deterministic channel
	// impairments (bursty loss, interference windows, deafness, ACK
	// drops) into every stop's medium. Each stop's injector gets its
	// own RNG fork, so results stay identical across worker counts.
	// When nil or disabled, nothing is forked and nothing is consulted:
	// the run is bit-identical to one built without fault support.
	Faults *faults.Config
	// Metrics, when non-nil, accumulates telemetry across every stop:
	// each per-stop simulation fills a private registry (medium,
	// stations, and scanner instruments), and the shards are merged
	// into this registry in stop order as each stop completes.
	// Counters hold drive-wide sums; stamps carry the stop-local
	// virtual time of the latest update in any stop.
	Metrics *telemetry.Registry
	// Stream, when non-nil, receives one flight-recorder record per
	// completed stop while the drive runs: census delta plus the
	// stop's full telemetry delta snapshot, emitted in stop-index
	// order at every worker count. Write errors latch inside the
	// writer and never affect the drive result.
	Stream *stream.Writer
	// Trace, when non-nil, accumulates frame-lifecycle and exchange
	// spans across every stop: each stop records into a private
	// tracer, merged here in stop order with flow/exchange IDs
	// rebased, so the rendered trace is identical for every worker
	// count.
	Trace *telemetry.Tracer
	// Progress, when non-nil, is called after each stop's results
	// merge — always in stop order — with the running census.
	Progress ProgressFunc
	// Cancel, when non-nil, requests a cooperative stop when it
	// becomes readable (conventionally: closed). Workers finish the
	// stop they are simulating — cancellation latency is bounded by
	// one stop per worker — no new stops start, and Run returns a
	// partial, well-formed Result covering the contiguous prefix of
	// merged stops, with Cancelled set. If a stream is attached, a
	// single trailer record (Cancelled: true) marks the cut, so a
	// consumer can tell a deliberate partial drive from a severed
	// pipe.
	Cancel <-chan struct{}
	// Submit, when non-nil, dispatches each stop's simulation to an
	// external executor — the politewifid daemon's shared global
	// worker pool — instead of the per-run pool Workers configures.
	// The executor must eventually run every submitted task, in any
	// order and with any concurrency, and must start a job's tasks in
	// submission order (FIFO); Run blocks until its own tasks finish.
	// Because per-stop RNGs are pre-forked and shards merge in stop
	// order, the census, telemetry, and stream bytes are identical to
	// a run on a private pool.
	Submit func(task func())
	// StartStop resumes a drive mid-way: stops before it are built
	// (their RNG forks are consumed so the seed stream stays aligned)
	// but not simulated or emitted. Combined with ResumeTotals — the
	// StreamTotals of the result being resumed — the records streamed
	// by the resumed run are byte-identical to the records the
	// uncancelled drive would have emitted for the same stops.
	StartStop int
	// ResumeTotals primes the stream's running totals when resuming
	// (zero for a fresh drive).
	ResumeTotals stream.Census
	// Queue selects the event-queue implementation for every stop's
	// scheduler. The zero value is the production timing wheel;
	// QueueLegacyHeap exists so differential tests can replay a drive
	// against the reference ordering.
	Queue eventsim.QueueKind
	// SchedStats, when true, adds wall-clock scheduler throughput
	// instruments (sched.events_per_sec, sched.event_ns) to each
	// stop's telemetry. Off by default: the values are host-dependent,
	// so enabling them intentionally forfeits byte-identical streams.
	SchedStats bool
	// Record, when non-nil, captures every stop's frame-level medium
	// activity — each transmission's wire bytes, arrival times and
	// per-receiver outcomes, plus every carrier-sense check — as a
	// politewifi.framelog/v1 log, flushed per stop in stop-index order
	// so the log bytes are identical at any worker count. Recording
	// observes the simulation without perturbing it. Mutually
	// exclusive with Replay.
	Record *replay.Recorder
	// Replay, when non-nil, re-runs a recorded drive without
	// re-simulating the RF medium: each stop's radios answer Transmit
	// and CCA from the log in lockstep, reproducing census, telemetry
	// and stream output byte for byte. The first disagreement between
	// the live MAC stack and the log latches a positioned divergence
	// error (Replay.Err) and leaves that stop's medium inert. Mutually
	// exclusive with Record.
	Replay *replay.Log
	// ProbeInterval and ActiveScanInterval override the attacker's
	// per-stop schedule (probe pacing and active-scan cadence); zero
	// keeps the defaults (2 ms and 50 ms). The scenario fuzzer uses
	// them to vary attacker timing.
	ProbeInterval      eventsim.Time
	ActiveScanInterval eventsim.Time
}

// DefaultConfig is the full-scale study configuration.
func DefaultConfig() Config {
	return Config{
		Seed:              20201104, // HotNets'20 presentation date
		Scale:             1.0,
		HouseholdsPerStop: 4,
		DwellPerChannel:   1200 * eventsim.Millisecond,
		VehicleSpeedKmh:   40,
	}
}

// Run executes the wardrive: for each stop, materialise the local
// neighbourhood, let clients associate and chatter, and run the
// scanner on each 2.4 GHz channel; then accumulate the census.
//
// Stops run on a pool of cfg.Workers goroutines. Each stop's RNG is
// pre-forked from the root seed in street order — the same fork
// sequence a sequential drive performs — and each stop fills a
// private result shard plus a private telemetry registry. Shards are
// merged in stop-index order, so the Result (vendor maps, counters,
// NonResponders order) and the merged telemetry are identical for
// every worker count.
func Run(cfg Config) *Result {
	if cfg.Scale <= 0 {
		cfg.Scale = 1
	}
	if cfg.HouseholdsPerStop == 0 {
		cfg.HouseholdsPerStop = 4
	}
	if cfg.DwellPerChannel == 0 {
		cfg.DwellPerChannel = 1200 * eventsim.Millisecond
	}
	if cfg.VehicleSpeedKmh == 0 {
		cfg.VehicleSpeedKmh = 40
	}
	rootRNG := eventsim.NewRNG(cfg.Seed)
	city := BuildCity(rootRNG.Fork(), cfg.Scale)
	stops := city.Stops(cfg.HouseholdsPerStop)

	cfg.Record.Begin(len(stops))
	if cfg.Replay != nil && cfg.Replay.Stops() != len(stops) {
		cfg.Replay.Fail(fmt.Errorf(
			"replay: log records %d stops but this configuration builds %d — wrong spec for this log",
			cfg.Replay.Stops(), len(stops)))
	}

	res := &Result{
		ClientVendors: make(map[string]int),
		APVendors:     make(map[string]int),
		Stops:         len(stops),
		Faulted:       cfg.Faults != nil && cfg.Faults.Enabled(),
	}

	// Pre-fork every stop's RNG in street order so the seed stream is
	// the one a sequential drive would consume, regardless of which
	// worker runs which stop when.
	rngs := make([]*eventsim.RNG, len(stops))
	for i := range stops {
		rngs[i] = rootRNG.Fork()
	}

	start := cfg.StartStop
	if start < 0 {
		start = 0
	}
	if start > len(stops) {
		start = len(stops)
	}

	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(stops)-start {
		workers = len(stops) - start
	}

	// cancelled polls the cooperative stop signal without blocking.
	cancelled := func() bool {
		if cfg.Cancel == nil {
			return false
		}
		select {
		case <-cfg.Cancel:
			return true
		default:
			return false
		}
	}

	// Ordered emission: shards fold into the result, registry, tracer
	// and flight-recorder stream the moment they become the next stop
	// in street order — not after the whole drive — so consumers see
	// live, deterministic progress. The emit order is stop-index order
	// at every worker count, which is what makes the stream bytes, the
	// merged registry, and the merged trace worker-count-invariant.
	var totalSim eventsim.Time
	totals := cfg.ResumeTotals
	emit := func(i int, sh *stopResult) {
		res.absorb(sh)
		if cfg.Metrics != nil {
			cfg.Metrics.MergeFrom(sh.metrics)
		}
		cfg.Trace.MergeFrom(sh.tracer)
		cfg.Record.WriteStop(sh.framelog)
		totalSim += sh.simEnd
		if cfg.Stream != nil {
			delta := stream.Census{
				Clients:          sh.clientsDiscovered,
				APs:              sh.apsDiscovered,
				ClientsResponded: sh.clientsResponded,
				APsResponded:     sh.apsResponded,
				Silent:           len(sh.nonResponders) - sh.inconclusive,
				Inconclusive:     sh.inconclusive,
			}
			totals.Add(delta)
			rec := stream.Record{
				Schema:   stream.Schema,
				Stop:     i,
				Stops:    len(stops),
				SimEndNS: int64(sh.simEnd),
				Census:   delta,
				Totals:   totals,
			}
			if sh.metrics != nil {
				rep := sh.metrics.Snapshot()
				rec.Telemetry = &rep
			}
			// Errors latch in the writer: a consumer disconnecting
			// mid-stream must never change the drive's result.
			_ = cfg.Stream.Write(rec)
		}
		if cfg.Progress != nil {
			cfg.Progress(Progress{
				Stop: i + 1, Stops: len(stops),
				Devices: res.Total(), Responded: res.TotalResponded(),
				Inconclusive: res.Inconclusive, SimTime: totalSim,
			})
		}
	}
	merger := &orderedMerger{next: start, pending: make(map[int]*stopResult), emit: emit}
	switch {
	case cfg.Submit != nil:
		// External executor: the politewifid shared pool. Tasks are
		// submitted in street order; the pool starts them FIFO, so on
		// cancellation the simulated set is a prefix of the submitted
		// set and the merged result stays contiguous. A task that
		// observes the cancel before simulating skips its stop — it
		// was queued, not running, so skipping keeps cancellation
		// latency bounded by the stops already in flight.
		var wg sync.WaitGroup
		for i := start; i < len(stops); i++ {
			if cancelled() {
				break
			}
			wg.Add(1)
			i := i
			cfg.Submit(func() {
				defer wg.Done()
				if cancelled() {
					return
				}
				merger.complete(i, runStop(rngs[i], i, stops[i], cfg))
			})
		}
		wg.Wait()
	case workers <= 1:
		for i := start; i < len(stops); i++ {
			if cancelled() {
				break
			}
			merger.complete(i, runStop(rngs[i], i, stops[i], cfg))
		}
	default:
		jobs := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range jobs {
					merger.complete(i, runStop(rngs[i], i, stops[i], cfg))
				}
			}()
		}
	feed:
		for i := start; i < len(stops); i++ {
			if cancelled() {
				break
			}
			select {
			case jobs <- i:
			case <-cfg.Cancel:
				// Workers drain the stop they hold and exit; nothing
				// else is dispatched. (A nil Cancel blocks this arm
				// forever, so the select degenerates to the send.)
				break feed
			}
		}
		close(jobs)
		wg.Wait()
	}

	res.StopsDone = merger.done()
	res.Cancelled = res.StopsDone < len(stops)
	if res.Cancelled && cfg.Stream != nil {
		// One well-formed trailer instead of dying mid-record: the
		// stream ends with the final totals and an explicit marker, so
		// a fold can distinguish "drive cancelled after k stops" from
		// "pipe severed after k records".
		_ = cfg.Stream.Write(stream.Trailer(res.StopsDone, len(stops), totals))
	}

	res.SimPerStop = cfg.DwellPerChannel * eventsim.Time(len(scanPlan))
	// Drive model: serpentine street distance between stop centroids
	// at the configured speed, plus the dwell time at each stop.
	dist := 0.0
	for i := 1; i < len(stops); i++ {
		dist += radioDist(stops[i-1].Pos, stops[i].Pos)
	}
	driveH := dist / 1000 / cfg.VehicleSpeedKmh
	dwellH := (res.SimPerStop.Seconds() * float64(len(stops))) / 3600
	res.DriveMinutes = (driveH + dwellH) * 60
	return res
}

func radioDist(a, b radio.Position) float64 { return a.DistanceTo(b) }

// orderedMerger turns out-of-order shard completions into in-order
// emission: a worker reports its finished stop, and every stop that
// has become contiguous with the already-emitted prefix is emitted
// under the lock. This keeps the fold (result, registry, tracer,
// stream, progress) in stop-index order without a barrier at drive
// end — the flight recorder streams while later stops still simulate.
type orderedMerger struct {
	mu      sync.Mutex
	next    int
	pending map[int]*stopResult
	emit    func(i int, sh *stopResult)
}

// done reports the index one past the last emitted stop — the length
// of the contiguous merged prefix. Call it only after all workers have
// drained.
func (m *orderedMerger) done() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.next
}

func (m *orderedMerger) complete(i int, sh *stopResult) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.pending[i] = sh
	for {
		ready, ok := m.pending[m.next]
		if !ok {
			return
		}
		delete(m.pending, m.next)
		m.emit(m.next, ready)
		m.next++
	}
}

// stopResult is one stop's private shard of the drive census. Workers
// fill shards without any shared state; Run merges them in stop-index
// order.
type stopResult struct {
	clientVendors map[string]int
	apVendors     map[string]int

	clientsDiscovered, apsDiscovered int
	clientsResponded, apsResponded   int
	inconclusive                     int

	nonResponders []DeviceOutcome

	// metrics is the stop-local telemetry registry (nil when the run
	// is uninstrumented), merged into Config.Metrics — and snapshotted
	// into the flight-recorder stream — when the stop's turn to emit
	// comes.
	metrics *telemetry.Registry
	// tracer is the stop-local span recorder (nil when tracing is
	// off), merged into Config.Trace in stop order.
	tracer *telemetry.Tracer
	// framelog is the stop's frame-log shard (nil when not recording),
	// flushed to Config.Record in stop order.
	framelog *replay.StopLog
	// simEnd is the stop's final virtual time.
	simEnd eventsim.Time
}

// absorb folds one stop's shard into the drive-wide result.
func (res *Result) absorb(sh *stopResult) {
	for v, n := range sh.clientVendors {
		res.ClientVendors[v] += n
	}
	for v, n := range sh.apVendors {
		res.APVendors[v] += n
	}
	res.ClientsDiscovered += sh.clientsDiscovered
	res.APsDiscovered += sh.apsDiscovered
	res.ClientsResponded += sh.clientsResponded
	res.APsResponded += sh.apsResponded
	res.Inconclusive += sh.inconclusive
	res.NonResponders = append(res.NonResponders, sh.nonResponders...)
}

// stopArenas pools frame-buffer arenas across stops: each in-flight
// stop checks one out for its medium, and Reset hands the chunks to
// the next stop instead of the garbage collector. Pool size tracks
// the number of concurrently simulating stops (the worker count).
var stopArenas = sync.Pool{New: func() any { return arena.New() }}

// runStop simulates one neighbourhood scan into a private shard.
// index is the stop's 0-based street-order position, which keys its
// frame-log shard when recording or replaying.
func runStop(rng *eventsim.RNG, index int, stop Stop, cfg Config) *stopResult {
	sh := &stopResult{
		clientVendors: make(map[string]int),
		apVendors:     make(map[string]int),
	}
	sched := eventsim.NewSchedulerQueue(cfg.Queue)
	med := radio.NewMedium(sched, rng.Fork(), radio.Config{
		PathLoss:        radio.LogDistance{Exponent: 2.7},
		ShadowSigmaDB:   3,
		FadingSigmaDB:   1,
		CaptureMarginDB: 10,
	})
	// Frame bytes for the whole stop come from one pooled arena,
	// reclaimed wholesale at teardown. Nothing below retains reception
	// bytes past the stop: the census copies SSID strings and the
	// shard carries only counts and formatted trace attributes.
	ar := stopArenas.Get().(*arena.Arena)
	med.SetArena(ar)
	defer func() {
		ar.Reset()
		stopArenas.Put(ar)
	}()
	var macMx mac.Metrics
	if cfg.Metrics != nil || cfg.Stream != nil {
		sh.metrics = telemetry.NewRegistry(sched.ObservedNow)
		med.SetMetrics(radio.NewMetrics(sh.metrics))
		macMx = mac.NewMetrics(sh.metrics)
	}
	if cfg.Trace != nil {
		sh.tracer = telemetry.NewTracer()
		med.SetTracer(sh.tracer)
	}
	// Fault injection: forked only when enabled, so a faults-off run
	// consumes the exact RNG stream it did before fault support
	// existed — and stays bit-identical to it.
	faultsOn := cfg.Faults != nil && cfg.Faults.Enabled()
	if faultsOn {
		inj := faults.New(rng.Fork(), *cfg.Faults)
		med.SetFaultInjector(inj)
		if sh.metrics != nil {
			inj.InstrumentInto(sh.metrics)
		}
	}
	// Frame-log record/replay hooks. Both run after the fault fork so
	// the RNG stream (and therefore everything downstream) is the same
	// as an unrecorded run's; in replay mode the medium simply never
	// draws from its fork again.
	if cfg.Record != nil {
		sh.framelog = replay.NewStopLog(index)
		med.SetFrameRecorder(sh.framelog)
	}
	var cursor *replay.Cursor
	if cfg.Replay != nil {
		cursor = cfg.Replay.Cursor(index)
		med.SetFrameReplayer(cursor)
	}

	type liveDev struct {
		spec    Spec
		station *mac.Station
	}
	nDevs := 0
	for _, h := range stop.Households {
		nDevs += 1 + len(h.Clients)
	}
	devices := make([]liveDev, 0, nDevs)

	for _, h := range stop.Households {
		ap := mac.New(med, rng.Fork(), mac.Config{
			Name: "ap-" + h.AP.MAC.String(), Addr: h.AP.MAC, Role: mac.RoleAP,
			Profile: h.AP.Profile, SSID: h.AP.SSID, Passphrase: h.Passphrase,
			Position: h.Pos, Band: h.Band, Channel: h.Channel,
		})
		ap.SetMetrics(macMx)
		devices = append(devices, liveDev{h.AP, ap})
		if h.Band == phy.Band5GHz {
			// 5 GHz regulatory limits allow higher EIRP, which is how
			// real dual-band gear evens out the extra path loss.
			ap.Radio.SetTxPower(20)
		}
		for _, cl := range h.Clients {
			pos := radio.Position{X: h.Pos.X + cl.Offset.X, Y: h.Pos.Y + cl.Offset.Y, Z: cl.Offset.Z}
			st := mac.New(med, rng.Fork(), mac.Config{
				Name: "cl-" + cl.MAC.String(), Addr: cl.MAC, Role: mac.RoleClient,
				Profile: cl.Profile, SSID: cl.SSID, Passphrase: h.Passphrase,
				Position: pos, Band: h.Band, Channel: h.Channel,
			})
			st.SetMetrics(macMx)
			if h.Band == phy.Band5GHz {
				st.Radio.SetTxPower(20)
			}
			st.Associate(h.AP.MAC, nil)
			devices = append(devices, liveDev{cl, st})
			// Background chatter so the discovery worker can see the
			// client even after association completes.
			ap := h.AP.MAC
			stCopy := st
			sched.Every(eventsim.Time(rng.Uniform(80, 250))*eventsim.Millisecond, func() {
				if stCopy.Associated() {
					stCopy.SendData(ap, []byte("iot telemetry"))
				}
			})
		}
	}

	attacker := core.NewAttacker(med, stop.Pos, phy.Band2GHz, wifiChannels[0], core.DefaultFakeMAC)
	// Robust injection rate: reach every household from the street.
	attacker.Rate = phy.Rate6
	scanner := core.NewScanner(attacker)
	if sh.metrics != nil {
		scanner.SetMetrics(sh.metrics)
		if faultsOn {
			scanner.EnableFaultInstruments(sh.metrics)
		}
	}
	scanner.ProbeInterval = 2 * eventsim.Millisecond
	scanner.ActiveScanInterval = 50 * eventsim.Millisecond
	if cfg.ProbeInterval > 0 {
		scanner.ProbeInterval = cfg.ProbeInterval
	}
	if cfg.ActiveScanInterval > 0 {
		scanner.ActiveScanInterval = cfg.ActiveScanInterval
	}
	scanner.Start()
	// Opt-in scheduler throughput metering (Config.SchedStats): wall
	// time is read only around the sim loop, never inside it, and the
	// derived instruments exist only when the caller asked to trade
	// byte-stability for them.
	var wallStart time.Time
	if cfg.SchedStats && sh.metrics != nil {
		wallStart = time.Now() //politevet:allow wallclock(opt-in throughput metering around the sim loop; never feeds simulation state)
	}
	// Two passes over the dual-band hop plan: devices discovered late
	// in a channel's first dwell get their probes on the second visit.
	for pass := 0; pass < 2; pass++ {
		for _, bc := range scanPlan {
			attacker.Radio.SetBand(bc.band)
			attacker.Radio.SetChannel(bc.channel)
			sched.RunFor(cfg.DwellPerChannel / 2)
		}
	}
	scanner.Stop()
	if cfg.SchedStats && sh.metrics != nil {
		wallNS := time.Since(wallStart).Nanoseconds() //politevet:allow wallclock(opt-in throughput metering around the sim loop; never feeds simulation state)
		if fired := sched.Fired(); fired > 0 && wallNS > 0 {
			sh.metrics.Gauge("sched.events_per_sec",
				"scheduler throughput, events per wall-clock second (opt-in; host-dependent)").
				SetInt(int(float64(fired) / (float64(wallNS) / 1e9)))
			sh.metrics.Gauge("sched.event_ns",
				"mean wall-clock nanoseconds per executed event (opt-in; host-dependent)").
				SetInt(int(wallNS / int64(fired)))
		}
	}

	// Accumulate outcomes for the devices that actually exist here.
	scanned := scanner.Devices()
	found := make(map[dot11.MAC]*core.Device, len(scanned))
	for _, d := range scanned {
		found[d.MAC] = d
	}
	for _, dev := range devices {
		d, ok := found[dev.spec.MAC]
		if !ok {
			continue // out of RF range or silent: not discovered
		}
		if dev.spec.IsAP {
			sh.apsDiscovered++
			if d.Responded {
				sh.apsResponded++
				sh.apVendors[dev.spec.Vendor]++
			}
		} else {
			sh.clientsDiscovered++
			if d.Responded {
				sh.clientsResponded++
				sh.clientVendors[dev.spec.Vendor]++
			}
		}
		if !d.Responded {
			if d.Verdict == core.VerdictInconclusive {
				sh.inconclusive++
			}
			sh.nonResponders = append(sh.nonResponders, DeviceOutcome{
				Spec: dev.spec, Probes: d.Probes, Acks: d.Acks,
				Verdict: d.Verdict,
			})
		}
	}
	if sh.metrics != nil {
		accumulateStop(sh.metrics, sched, attacker, faultsOn)
	}
	// A replayed stop must have consumed its whole shard: leftover
	// records mean the live run stopped asking for events mid-log,
	// which is as much a divergence as asking for the wrong one.
	if cursor != nil {
		cursor.Close()
	}
	sh.simEnd = sched.Now()
	return sh
}

// accumulateStop folds one stop's scheduler and attacker stats into
// the drive-wide registry. Each stop owns a fresh scheduler and
// attacker, so sampled funcs would only ever show the last stop;
// adding into plain counters at stop teardown sums the whole drive.
func accumulateStop(reg *telemetry.Registry, sched *eventsim.Scheduler, a *core.Attacker, faultsOn bool) {
	reg.Counter("sched.events_fired", "events executed (summed over stops)").Add(sched.Fired())
	for origin, n := range sched.FiredByOrigin() {
		reg.Counter("sched.fired."+origin, "events executed, by schedule origin").Add(n)
	}
	reg.Gauge("sched.queue_high_water", "maximum event-queue depth (worst stop)").SetInt(sched.HighWater())
	reg.Counter("core.injected", "frames injected by the attacker").Add(a.Injected)
	reg.Counter("core.inject_drops", "injections refused (transmitter busy)").Add(a.InjectDrops)
	reg.Counter("core.frames_seen", "frames sniffed in monitor mode").Add(a.FramesSeen)
	if faultsOn {
		// Registered only under faults so a pristine run's telemetry
		// report keeps its exact historical shape.
		reg.Counter("core.fcs_errors", "receptions that failed the FCS check").Add(a.FCSErrors)
	}
	reg.Counter("core.acks_to_me", "ACKs addressed to the spoofed MAC").Add(a.AcksToMe)
	reg.Counter("core.cts_to_me", "CTS addressed to the spoofed MAC").Add(a.CTSToMe)
	reg.Counter("core.deauths_for_me", "deauths aimed at the spoofed MAC").Add(a.DeauthsForMe)
}
