package world

import (
	"bytes"
	"reflect"
	"testing"

	"politewifi/internal/eventsim"
	"politewifi/internal/telemetry"
)

// parallelTestConfig is small enough for CI but large enough to span
// several stops per worker.
func parallelTestConfig() Config {
	return Config{
		Seed:              99,
		Scale:             0.02, // ~76 APs, ~30 clients, ~20 stops
		HouseholdsPerStop: 4,
		DwellPerChannel:   600 * eventsim.Millisecond,
		VehicleSpeedKmh:   40,
	}
}

// TestWardriveParallelDeterminism is the seed-stability regression
// test: Run with Workers: 1 and Workers: N must produce an identical
// Result — vendor maps, every counter, the NonResponders slice in
// order — and byte-identical merged telemetry reports. CI runs this
// under -race, which also exercises the worker pool for data races.
func TestWardriveParallelDeterminism(t *testing.T) {
	cfgSeq := parallelTestConfig()
	cfgSeq.Workers = 1
	regSeq := telemetry.NewRegistry(nil)
	cfgSeq.Metrics = regSeq

	cfgPar := parallelTestConfig()
	cfgPar.Workers = 4
	regPar := telemetry.NewRegistry(nil)
	cfgPar.Metrics = regPar

	resSeq := Run(cfgSeq)
	resPar := Run(cfgPar)

	if !reflect.DeepEqual(resSeq, resPar) {
		t.Fatalf("parallel result diverged from sequential:\nseq: %+v\npar: %+v", resSeq, resPar)
	}
	if resSeq.Total() == 0 {
		t.Fatal("determinism check ran on an empty drive")
	}

	var bufSeq, bufPar bytes.Buffer
	if err := regSeq.Snapshot().WriteJSON(&bufSeq); err != nil {
		t.Fatal(err)
	}
	if err := regPar.Snapshot().WriteJSON(&bufPar); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bufSeq.Bytes(), bufPar.Bytes()) {
		t.Fatalf("telemetry reports differ between Workers:1 and Workers:4:\nseq:\n%s\npar:\n%s",
			bufSeq.String(), bufPar.String())
	}
	if c := regSeq.Snapshot().Counter("sched.events_fired"); c == nil || c.Value == 0 {
		t.Fatal("merged registry recorded no scheduler events")
	}
	if c := regSeq.Snapshot().Counter("pipeline.devices_discovered"); c == nil || c.Value == 0 {
		t.Fatal("merged registry recorded no discoveries")
	}
}

// TestWardriveChromeTraceStable asserts the rendered Chrome trace is
// byte-identical across worker counts: per-stop tracers merge in stop
// order with flow/exchange IDs rebased, and equal-timestamp spans
// keep their deterministic recording order through the stable sort.
// It also checks the causal-exchange guarantee: every probe exchange
// is a connected tree of at least a probe tx plus a verdict event.
func TestWardriveChromeTraceStable(t *testing.T) {
	run := func(workers int) *telemetry.Tracer {
		cfg := parallelTestConfig()
		cfg.Workers = workers
		cfg.Trace = telemetry.NewTracer()
		Run(cfg)
		return cfg.Trace
	}
	trSeq := run(1)
	trPar := run(4)

	var bufSeq, bufPar bytes.Buffer
	if err := trSeq.WriteChromeJSON(&bufSeq); err != nil {
		t.Fatal(err)
	}
	if err := trPar.WriteChromeJSON(&bufPar); err != nil {
		t.Fatal(err)
	}
	if bufSeq.Len() == 0 || trSeq.Len() == 0 {
		t.Fatal("trace is empty; the stability check is vacuous")
	}
	if !bytes.Equal(bufSeq.Bytes(), bufPar.Bytes()) {
		t.Fatalf("Chrome trace differs between Workers:1 and Workers:4 (%d vs %d bytes)",
			bufSeq.Len(), bufPar.Len())
	}

	exchanges := trSeq.ExchangeLatencies()
	if len(exchanges) == 0 {
		t.Fatal("drive recorded no probe exchanges")
	}
	for _, ex := range exchanges {
		if ex.Spans < 2 {
			t.Fatalf("exchange %d has %d span(s); every probed target must link "+
				"probe→(response|retry|timeout)→verdict", ex.Exchange, ex.Spans)
		}
		if ex.Latency() < 0 {
			t.Fatalf("exchange %d has negative extent", ex.Exchange)
		}
	}
}

// TestWardriveReplayStable asserts that the same configuration run
// twice (same worker count) replays bit-identically — the base
// property the cross-worker-count test builds on.
func TestWardriveReplayStable(t *testing.T) {
	cfg := parallelTestConfig()
	cfg.Workers = 3
	a := Run(cfg)
	b := Run(cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("replay diverged:\nfirst:  %+v\nsecond: %+v", a, b)
	}
}

// TestNonRespondersDeterministicOrder starves the drive of dwell time
// so some devices are discovered but never probed, then asserts the
// NonResponders ordering is identical across worker counts and
// replays — the "diff clean" guarantee.
func TestNonRespondersDeterministicOrder(t *testing.T) {
	cfg := parallelTestConfig()
	cfg.DwellPerChannel = 120 * eventsim.Millisecond // too short to probe everyone

	cfg.Workers = 1
	seq := Run(cfg)
	cfg.Workers = 4
	par := Run(cfg)

	if len(seq.NonResponders) == 0 {
		t.Skip("starved drive still probed everyone; ordering vacuously stable")
	}
	if !reflect.DeepEqual(seq.NonResponders, par.NonResponders) {
		t.Fatalf("NonResponders order diverged:\nseq: %+v\npar: %+v",
			seq.NonResponders, par.NonResponders)
	}
}

// TestWorkersDefaulting pins the Workers semantics: 0 means "use the
// machine", negative is treated the same, and any value yields the
// same census.
func TestWorkersDefaulting(t *testing.T) {
	cfg := parallelTestConfig()
	cfg.Scale = 0.008
	cfg.Workers = 0
	auto := Run(cfg)
	cfg.Workers = -3
	neg := Run(cfg)
	cfg.Workers = 64 // far more workers than stops
	many := Run(cfg)
	if !reflect.DeepEqual(auto, neg) || !reflect.DeepEqual(auto, many) {
		t.Fatal("worker-count defaulting changed the census")
	}
}
