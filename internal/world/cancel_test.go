package world

import (
	"bytes"
	"reflect"
	"testing"

	"politewifi/internal/telemetry"
	"politewifi/internal/telemetry/stream"
)

// cancelAtStop returns a Cancel channel plus a Progress hook that
// closes it once k stops have merged — the deterministic way to cancel
// "at stop k": the signal fires inside the ordered emit path, so
// exactly the workers in flight at that moment drain and no new stops
// dispatch.
func cancelAtStop(k int, inner ProgressFunc) (<-chan struct{}, ProgressFunc) {
	ch := make(chan struct{})
	closed := false
	return ch, func(p Progress) {
		if inner != nil {
			inner(p)
		}
		if p.Stop >= k && !closed {
			closed = true
			close(ch)
		}
	}
}

// TestCancelPartialPrefix: a cancelled drive returns a well-formed
// partial result — a contiguous prefix of the full drive — and its
// stream is a prefix of the full stream plus exactly one trailer
// record, at sequential and parallel worker counts.
func TestCancelPartialPrefix(t *testing.T) {
	full := func() (*Result, []byte) {
		cfg := parallelTestConfig()
		cfg.Workers = 1
		cfg.Metrics = telemetry.NewRegistry(nil)
		var buf bytes.Buffer
		cfg.Stream = stream.NewWriter(&buf)
		return Run(cfg), buf.Bytes()
	}
	fullRes, fullStream := full()
	if fullRes.Cancelled || fullRes.StopsDone != fullRes.Stops {
		t.Fatalf("uncancelled drive reports Cancelled=%v StopsDone=%d (stops %d)",
			fullRes.Cancelled, fullRes.StopsDone, fullRes.Stops)
	}
	fullLines := bytes.SplitAfter(fullStream, []byte("\n"))

	const cancelAt = 5
	for _, workers := range []int{1, 4} {
		cfg := parallelTestConfig()
		cfg.Workers = workers
		cfg.Metrics = telemetry.NewRegistry(nil)
		var buf bytes.Buffer
		cfg.Stream = stream.NewWriter(&buf)
		cfg.Cancel, cfg.Progress = cancelAtStop(cancelAt, nil)
		res := Run(cfg)

		if workers == 1 {
			// Sequential cancellation is exact: the loop checks the
			// signal before each stop, so precisely cancelAt stops ran.
			if res.StopsDone != cancelAt {
				t.Fatalf("sequential cancel at stop %d left StopsDone=%d", cancelAt, res.StopsDone)
			}
		} else if res.StopsDone < cancelAt {
			// Parallel cancellation drains in-flight workers, so the
			// exact count depends on scheduling — but never fewer stops
			// than had merged when the signal fired.
			t.Fatalf("workers=%d: StopsDone=%d < cancel point %d", workers, res.StopsDone, cancelAt)
		}
		if res.Cancelled != (res.StopsDone < fullRes.Stops) {
			t.Fatalf("workers=%d: Cancelled=%v inconsistent with StopsDone=%d/%d",
				workers, res.Cancelled, res.StopsDone, fullRes.Stops)
		}
		if !res.Cancelled {
			// Scheduling let every stop finish before the drain — the
			// result must then be the full drive, trailer-free.
			if !bytes.Equal(buf.Bytes(), fullStream) {
				t.Fatalf("workers=%d: uncancelled-by-race drive streamed different bytes", workers)
			}
			continue
		}

		lines := bytes.SplitAfter(buf.Bytes(), []byte("\n"))
		// SplitAfter leaves a trailing empty slice after the final \n;
		// the line before it is the trailer.
		if n := len(lines); n < 2 || len(lines[n-1]) != 0 {
			t.Fatalf("workers=%d: malformed stream tail", workers)
		}
		records := lines[: len(lines)-2 : len(lines)-2]
		if got, want := len(records), res.StopsDone; got != want {
			t.Fatalf("workers=%d: stream has %d stop records, result says %d stops done",
				workers, got, want)
		}
		// Every stop record must be byte-identical to the full drive's
		// record for the same stop: cancellation truncates, never skews.
		for i, line := range records {
			if !bytes.Equal(line, fullLines[i]) {
				t.Fatalf("workers=%d: stream record %d differs from the uncancelled drive:\ngot:  %s\nwant: %s",
					workers, i, line, fullLines[i])
			}
		}

		fold, err := stream.Fold(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("workers=%d: folding cancelled stream: %v", workers, err)
		}
		if !fold.Cancelled {
			t.Fatalf("workers=%d: fold did not see the cancellation trailer", workers)
		}
		if fold.Records != res.StopsDone {
			t.Fatalf("workers=%d: fold saw %d records, want %d", workers, fold.Records, res.StopsDone)
		}
		if fold.Totals != res.StreamTotals() {
			t.Fatalf("workers=%d: folded totals %+v != result totals %+v",
				workers, fold.Totals, res.StreamTotals())
		}

		// The partial registry equals the fold of the partial stream.
		var folded, final bytes.Buffer
		if err := fold.Registry.Snapshot().WriteJSON(&folded); err != nil {
			t.Fatal(err)
		}
		if err := cfg.Metrics.Snapshot().WriteJSON(&final); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(folded.Bytes(), final.Bytes()) {
			t.Fatalf("workers=%d: folded partial stream != partial registry snapshot", workers)
		}
	}
}

// TestCancelBeforeStart: a pre-closed Cancel yields an empty but
// well-formed result — zero stops done, a lone trailer on the stream.
func TestCancelBeforeStart(t *testing.T) {
	cfg := parallelTestConfig()
	cfg.Workers = 3
	ch := make(chan struct{})
	close(ch)
	cfg.Cancel = ch
	var buf bytes.Buffer
	cfg.Stream = stream.NewWriter(&buf)
	res := Run(cfg)
	if !res.Cancelled || res.StopsDone != 0 {
		t.Fatalf("pre-cancelled drive: Cancelled=%v StopsDone=%d", res.Cancelled, res.StopsDone)
	}
	if res.Total() != 0 {
		t.Fatalf("pre-cancelled drive discovered %d devices", res.Total())
	}
	fold, err := stream.Fold(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !fold.Cancelled || fold.Records != 0 {
		t.Fatalf("fold of pre-cancelled stream: %+v", fold)
	}
}

// TestResumeReproducesFullDrive is the checkpoint/restart guarantee:
// cancel a drive at stop k, then resume with StartStop=StopsDone and
// ResumeTotals=StreamTotals; the resumed stream's records concatenated
// after the cancelled prefix (sans trailer) must be byte-identical to
// the uncancelled drive's stream, and the summed censuses must match.
func TestResumeReproducesFullDrive(t *testing.T) {
	run := func(cfg Config) (*Result, []byte, *telemetry.Registry) {
		cfg.Metrics = telemetry.NewRegistry(nil)
		var buf bytes.Buffer
		cfg.Stream = stream.NewWriter(&buf)
		res := Run(cfg)
		return res, buf.Bytes(), cfg.Metrics
	}

	fullCfg := parallelTestConfig()
	fullCfg.Workers = 2
	fullRes, fullStream, fullReg := run(fullCfg)

	// Cancel sequentially so the cut point is exact and the test is
	// scheduling-independent.
	cancelCfg := parallelTestConfig()
	cancelCfg.Workers = 1
	cancelCfg.Cancel, cancelCfg.Progress = cancelAtStop(4, nil)
	partRes, partStream, _ := run(cancelCfg)
	if !partRes.Cancelled || partRes.StopsDone != 4 {
		t.Fatalf("setup: sequential cancel at stop 4 produced StopsDone=%d Cancelled=%v",
			partRes.StopsDone, partRes.Cancelled)
	}

	resumeCfg := parallelTestConfig()
	resumeCfg.Workers = 3 // a different pool shape must not matter
	resumeCfg.StartStop = partRes.StopsDone
	resumeCfg.ResumeTotals = partRes.StreamTotals()
	resRes, resStream, resReg := run(resumeCfg)
	if resRes.Cancelled {
		t.Fatal("resumed drive reports Cancelled")
	}
	if resRes.StopsDone != fullRes.Stops {
		t.Fatalf("resumed drive StopsDone=%d, want %d", resRes.StopsDone, fullRes.Stops)
	}

	// Drop the trailer — the last NDJSON line — from the partial stream.
	trimmed := partStream[:len(partStream)-1] // trailing \n
	cut := bytes.LastIndexByte(trimmed, '\n') + 1
	prefix := partStream[:cut]
	stitched := append(append([]byte(nil), prefix...), resStream...)
	if !bytes.Equal(stitched, fullStream) {
		t.Fatalf("prefix+resume stream != full stream (%d vs %d bytes)",
			len(stitched), len(fullStream))
	}

	// Censuses: partial + resumed = full.
	sum := partRes.StreamTotals()
	sum.Add(resRes.StreamTotals())
	if sum != fullRes.StreamTotals() {
		t.Fatalf("partial+resumed census %+v != full census %+v", sum, fullRes.StreamTotals())
	}

	// The stitched stream folds to the full drive's registry.
	fold, err := stream.Fold(bytes.NewReader(stitched))
	if err != nil {
		t.Fatal(err)
	}
	var folded, want bytes.Buffer
	if err := fold.Registry.Snapshot().WriteJSON(&folded); err != nil {
		t.Fatal(err)
	}
	if err := fullReg.Snapshot().WriteJSON(&want); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(folded.Bytes(), want.Bytes()) {
		t.Fatal("folded stitched stream != full drive registry snapshot")
	}
	_ = resReg
}

// TestSubmitExecutorDeterminism: running the drive over an external
// executor (the daemon's shared-pool path) produces a Result and
// stream byte-identical to the private-pool drive.
func TestSubmitExecutorDeterminism(t *testing.T) {
	ref := parallelTestConfig()
	ref.Workers = 1
	ref.Metrics = telemetry.NewRegistry(nil)
	var refBuf bytes.Buffer
	ref.Stream = stream.NewWriter(&refBuf)
	want := Run(ref)

	// A minimal FIFO pool: tasks start in submission order on n
	// goroutines fed from one channel.
	tasks := make(chan func(), 1024)
	for w := 0; w < 4; w++ {
		go func() {
			for task := range tasks {
				task()
			}
		}()
	}
	defer close(tasks)

	cfg := parallelTestConfig()
	cfg.Metrics = telemetry.NewRegistry(nil)
	var buf bytes.Buffer
	cfg.Stream = stream.NewWriter(&buf)
	cfg.Submit = func(task func()) { tasks <- task }
	got := Run(cfg)

	if !reflect.DeepEqual(got, want) {
		t.Fatal("Submit-executor drive result differs from private-pool drive")
	}
	if !bytes.Equal(buf.Bytes(), refBuf.Bytes()) {
		t.Fatalf("Submit-executor stream differs from private-pool stream (%d vs %d bytes)",
			buf.Len(), refBuf.Len())
	}
}
