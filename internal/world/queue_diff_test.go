package world

import (
	"bytes"
	"reflect"
	"testing"

	"politewifi/internal/eventsim"
	"politewifi/internal/telemetry"
	"politewifi/internal/telemetry/stream"
)

// TestQueueHeapWheelDifferential is the drive-level half of the
// scheduler differential suite (eventsim has the unit-level half):
// the timing wheel and the legacy binary heap must be observationally
// interchangeable. A fixed-seed wardrive under each queue kind — at
// Workers:1 and Workers:4 — must produce an identical census, a
// byte-identical merged telemetry report, and a byte-identical
// flight-recorder stream.
func TestQueueHeapWheelDifferential(t *testing.T) {
	type run struct {
		res    *Result
		stream []byte
		report []byte
	}
	drive := func(kind eventsim.QueueKind, workers int) run {
		cfg := parallelTestConfig()
		cfg.Queue = kind
		cfg.Workers = workers
		cfg.Metrics = telemetry.NewRegistry(nil)
		var buf bytes.Buffer
		cfg.Stream = stream.NewWriter(&buf)
		res := Run(cfg)
		if err := cfg.Stream.Err(); err != nil {
			t.Fatalf("stream writer error: %v", err)
		}
		var rep bytes.Buffer
		if err := cfg.Metrics.Snapshot().WriteJSON(&rep); err != nil {
			t.Fatal(err)
		}
		return run{res: res, stream: buf.Bytes(), report: rep.Bytes()}
	}

	for _, workers := range []int{1, 4} {
		wheel := drive(eventsim.QueueWheel, workers)
		heap := drive(eventsim.QueueLegacyHeap, workers)
		if wheel.res.Total() == 0 {
			t.Fatal("differential check ran on an empty drive")
		}
		if !reflect.DeepEqual(wheel.res, heap.res) {
			t.Fatalf("workers=%d: census diverged between wheel and heap:\nwheel: %+v\nheap:  %+v",
				workers, wheel.res, heap.res)
		}
		if !bytes.Equal(wheel.report, heap.report) {
			t.Fatalf("workers=%d: telemetry reports differ between wheel and heap:\nwheel:\n%s\nheap:\n%s",
				workers, wheel.report, heap.report)
		}
		if !bytes.Equal(wheel.stream, heap.stream) {
			t.Fatalf("workers=%d: flight-recorder streams differ between wheel and heap (%d vs %d bytes)",
				workers, len(wheel.stream), len(heap.stream))
		}
	}
}

// TestSchedStatsOptIn pins the SchedStats contract: off (the zero
// value, what every golden artifact is recorded under) must register
// no wall-clock scheduler gauges anywhere — TestStreamGolden then
// guarantees the stream stays bit-exact — while on must surface
// sched.events_per_sec and sched.event_ns in the merged report
// without perturbing the census. The on-mode stream deliberately
// carries the host-dependent gauges (that is the documented trade:
// opting in forfeits byte-reproducible artifacts).
func TestSchedStatsOptIn(t *testing.T) {
	drive := func(stats bool) (*Result, telemetry.Report) {
		cfg := parallelTestConfig()
		cfg.SchedStats = stats
		cfg.Workers = 2
		cfg.Metrics = telemetry.NewRegistry(nil)
		var buf bytes.Buffer
		cfg.Stream = stream.NewWriter(&buf)
		res := Run(cfg)
		return res, cfg.Metrics.Snapshot()
	}

	// The two wall-derived instruments (sched.queue_high_water is
	// sim-deterministic and always present; it is not part of this
	// contract).
	wallGauges := []string{"sched.events_per_sec", "sched.event_ns"}
	gauges := func(rep telemetry.Report) map[string]bool {
		out := make(map[string]bool)
		for _, g := range rep.Gauges {
			for _, w := range wallGauges {
				if g.Name == w {
					out[g.Name] = true
				}
			}
		}
		return out
	}

	offRes, offRep := drive(false)
	onRes, onRep := drive(true)

	if g := gauges(offRep); len(g) != 0 {
		t.Fatalf("SchedStats=false registered scheduler wall-clock gauges: %v", g)
	}
	g := gauges(onRep)
	for _, want := range wallGauges {
		if !g[want] {
			t.Fatalf("SchedStats=true did not register %s (got %v)", want, g)
		}
	}
	// Metering reads the wall clock around the sim loop, never inside
	// it: the census must be untouched by the flag.
	if !reflect.DeepEqual(offRes, onRes) {
		t.Fatalf("SchedStats perturbed the drive:\noff: %+v\non:  %+v", offRes, onRes)
	}
}
