package world

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"politewifi/internal/eventsim"
	"politewifi/internal/faults"
	"politewifi/internal/replay"
	"politewifi/internal/telemetry"
	"politewifi/internal/telemetry/stream"
)

// replayTestConfig is a small faulted drive: faults exercise the
// injector's consultation/drop restoration, and the scale keeps the
// frame log a few thousand records.
func replayTestConfig() Config {
	return Config{
		Seed:              41,
		Scale:             0.006, // ~22 APs, ~9 clients, ~6 stops
		HouseholdsPerStop: 4,
		DwellPerChannel:   200 * eventsim.Millisecond,
		VehicleSpeedKmh:   40,
		Faults: func() *faults.Config {
			fc := faults.BurstyLoss(0.08)
			fc.ACKLoss = 0.05
			fc.JamDuty = 0.04
			fc.DeafDuty = 0.05
			return &fc
		}(),
	}
}

// driveArtifacts captures everything a drive emits that must be
// byte-reproducible.
type driveArtifacts struct {
	res    *Result
	stream []byte
	report []byte
}

// drive runs cfg with metrics and a stream attached, returning the
// reproducibility artifacts.
func drive(t *testing.T, cfg Config) driveArtifacts {
	t.Helper()
	cfg.Metrics = telemetry.NewRegistry(nil)
	var buf bytes.Buffer
	cfg.Stream = stream.NewWriter(&buf)
	res := Run(cfg)
	if err := cfg.Stream.Err(); err != nil {
		t.Fatalf("stream writer error: %v", err)
	}
	var rep bytes.Buffer
	if err := cfg.Metrics.Snapshot().WriteJSON(&rep); err != nil {
		t.Fatal(err)
	}
	return driveArtifacts{res: res, stream: buf.Bytes(), report: rep.Bytes()}
}

// record runs cfg with a frame-log recorder attached and returns the
// log bytes alongside the live artifacts.
func record(t *testing.T, cfg Config) ([]byte, driveArtifacts) {
	t.Helper()
	var log bytes.Buffer
	rec := replay.NewRecorder(&log)
	cfg.Record = rec
	art := drive(t, cfg)
	if err := rec.Err(); err != nil {
		t.Fatalf("recorder error: %v", err)
	}
	if rec.Records() == 0 {
		t.Fatal("recorded drive produced an empty frame log")
	}
	return log.Bytes(), art
}

// TestReplayMatchesLive is the tentpole oracle: a recorded drive,
// replayed from its frame log — at workers 1 and 4, under both queue
// kinds — must reproduce the live run's census, telemetry report and
// flight-recorder stream byte for byte, and recording itself must not
// perturb the drive.
func TestReplayMatchesLive(t *testing.T) {
	cfg := replayTestConfig()
	logBytes, live := record(t, cfg)

	// Recording is a pure observer: an unrecorded drive is identical.
	plain := drive(t, cfg)
	if !reflect.DeepEqual(plain.res, live.res) {
		t.Fatalf("recording perturbed the census:\nplain: %+v\nrecorded: %+v", plain.res, live.res)
	}
	if !bytes.Equal(plain.stream, live.stream) || !bytes.Equal(plain.report, live.report) {
		t.Fatal("recording perturbed the telemetry or stream bytes")
	}

	for _, workers := range []int{1, 4} {
		for _, kind := range []eventsim.QueueKind{eventsim.QueueWheel, eventsim.QueueLegacyHeap} {
			log, err := replay.Load(bytes.NewReader(logBytes))
			if err != nil {
				t.Fatalf("load: %v", err)
			}
			rcfg := replayTestConfig()
			rcfg.Workers = workers
			rcfg.Queue = kind
			rcfg.Replay = log
			replayed := drive(t, rcfg)
			if err := log.Err(); err != nil {
				t.Fatalf("workers=%d queue=%v: replay diverged: %v", workers, kind, err)
			}
			if !reflect.DeepEqual(replayed.res, live.res) {
				t.Fatalf("workers=%d queue=%v: replayed census differs:\nlive:    %+v\nreplayed: %+v",
					workers, kind, live.res, replayed.res)
			}
			if !bytes.Equal(replayed.report, live.report) {
				t.Fatalf("workers=%d queue=%v: replayed telemetry report differs:\nlive:\n%s\nreplayed:\n%s",
					workers, kind, live.report, replayed.report)
			}
			if !bytes.Equal(replayed.stream, live.stream) {
				t.Fatalf("workers=%d queue=%v: replayed stream differs (%d vs %d bytes)",
					workers, kind, len(live.stream), len(replayed.stream))
			}
		}
	}
}

// TestFramelogGolden pins the exact frame-log bytes of a small seeded
// drive — the serialized politewifi.framelog/v1 format is part of the
// repo's compatibility surface. Regenerate with:
// go test ./internal/world -run FramelogGolden -update
func TestFramelogGolden(t *testing.T) {
	cfg := Config{
		Seed:              7,
		Scale:             0.004,
		HouseholdsPerStop: 4,
		DwellPerChannel:   100 * eventsim.Millisecond,
		VehicleSpeedKmh:   40,
		Workers:           2,
	}
	var buf bytes.Buffer
	rec := replay.NewRecorder(&buf)
	rec.SetSpec([]byte(`{"kind":"drive","seed":7,"scale":0.004,"stop_size":4,"dwell_ms":100}`))
	cfg.Record = rec
	Run(cfg)
	if err := rec.Err(); err != nil {
		t.Fatalf("recorder error: %v", err)
	}

	golden := filepath.Join("testdata", "framelog_golden.ndjson")
	if *updateGolden {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("frame log diverged from golden (%d vs %d bytes); if the format "+
			"intentionally changed, regenerate with -update", buf.Len(), len(want))
	}

	// The golden log must replay cleanly against its own config.
	log, err := replay.Load(bytes.NewReader(want))
	if err != nil {
		t.Fatalf("load golden: %v", err)
	}
	cfg.Record = nil
	cfg.Replay = log
	Run(cfg)
	if err := log.Err(); err != nil {
		t.Fatalf("golden log does not replay cleanly: %v", err)
	}
}

// TestReplayPositionedErrors covers the failure surface: loading a
// corrupt or truncated log reports a *replay.PosError with the line
// and byte offset, and replaying a valid log against the wrong world
// latches a *replay.DivergenceError positioned at the first
// disagreeing record.
func TestReplayPositionedErrors(t *testing.T) {
	cfg := replayTestConfig()
	logBytes, _ := record(t, cfg)
	lines := bytes.SplitAfter(logBytes, []byte("\n"))

	t.Run("corrupt-json", func(t *testing.T) {
		damaged := bytes.Join([][]byte{lines[0], lines[1], []byte("{oops\n")}, nil)
		_, err := replay.Load(bytes.NewReader(damaged))
		var pe *replay.PosError
		if !errors.As(err, &pe) {
			t.Fatalf("want *replay.PosError, got %v", err)
		}
		if pe.Record != 2 || pe.Offset == 0 {
			t.Fatalf("error not positioned at the damage: %v", pe)
		}
	})

	t.Run("chopped-record", func(t *testing.T) {
		damaged := logBytes[:len(logBytes)-len(lines[len(lines)-2])/2]
		_, err := replay.Load(bytes.NewReader(damaged))
		var pe *replay.PosError
		if !errors.As(err, &pe) {
			t.Fatalf("want *replay.PosError for a chopped tail, got %v", err)
		}
	})

	t.Run("wrong-schema", func(t *testing.T) {
		_, err := replay.Load(strings.NewReader(`{"schema":"politewifi.framelog/v0","stops":1}` + "\n"))
		var pe *replay.PosError
		if !errors.As(err, &pe) || pe.Record != 0 {
			t.Fatalf("want *replay.PosError at the head, got %v", err)
		}
	})

	t.Run("truncated-log-diverges", func(t *testing.T) {
		// Drop the last quarter of the records: the live run will ask
		// for an event past the end of some stop's shard.
		cut := bytes.Join(lines[:3*len(lines)/4], nil)
		log, err := replay.Load(bytes.NewReader(cut))
		if err != nil {
			t.Fatalf("load: %v", err)
		}
		rcfg := replayTestConfig()
		rcfg.Replay = log
		Run(rcfg)
		var de *replay.DivergenceError
		if err := log.Err(); !errors.As(err, &de) {
			t.Fatalf("want *replay.DivergenceError, got %v", err)
		}
	})

	t.Run("wrong-seed-diverges", func(t *testing.T) {
		log, err := replay.Load(bytes.NewReader(logBytes))
		if err != nil {
			t.Fatalf("load: %v", err)
		}
		rcfg := replayTestConfig()
		rcfg.Seed = 42 // different city, same stop count is unlikely; either error is fine
		rcfg.Replay = log
		Run(rcfg)
		if log.Err() == nil {
			t.Fatal("replaying under a different seed reported no error")
		}
	})

	t.Run("wrong-scale-fails-setup", func(t *testing.T) {
		log, err := replay.Load(bytes.NewReader(logBytes))
		if err != nil {
			t.Fatalf("load: %v", err)
		}
		rcfg := replayTestConfig()
		rcfg.Scale = 0.012
		rcfg.Replay = log
		Run(rcfg)
		if err := log.Err(); err == nil || !strings.Contains(err.Error(), "stops") {
			t.Fatalf("want a stop-count mismatch error, got %v", err)
		}
	})
}
