package world

import (
	"bytes"
	"reflect"
	"testing"

	"politewifi/internal/core"
	"politewifi/internal/faults"
	"politewifi/internal/telemetry"
)

// faultedTestConfig is parallelTestConfig under a mixed fault load:
// bursty loss, some ACK-only loss, interference windows, and dozing
// victims — all four impairments live at once.
func faultedTestConfig() Config {
	cfg := parallelTestConfig()
	fc := faults.BurstyLoss(0.2)
	fc.ACKLoss = 0.1
	fc.JamDuty = 0.1
	fc.DeafDuty = 0.1
	cfg.Faults = &fc
	return cfg
}

// TestWardriveFaultsParallelDeterminism extends the seed-stability
// regression to hostile channels: with every impairment enabled, the
// census, the NonResponders slice (verdicts included) and the merged
// telemetry report must still be identical between Workers:1 and
// Workers:4. Each stop's injector draws from its own pre-forked RNG,
// so worker scheduling cannot leak into fault decisions. CI runs this
// under -race.
func TestWardriveFaultsParallelDeterminism(t *testing.T) {
	cfgSeq := faultedTestConfig()
	cfgSeq.Workers = 1
	regSeq := telemetry.NewRegistry(nil)
	cfgSeq.Metrics = regSeq

	cfgPar := faultedTestConfig()
	cfgPar.Workers = 4
	regPar := telemetry.NewRegistry(nil)
	cfgPar.Metrics = regPar

	resSeq := Run(cfgSeq)
	resPar := Run(cfgPar)

	if !reflect.DeepEqual(resSeq, resPar) {
		t.Fatalf("faulted parallel result diverged from sequential:\nseq: %+v\npar: %+v", resSeq, resPar)
	}
	if resSeq.Total() == 0 {
		t.Fatal("determinism check ran on an empty drive")
	}
	if !resSeq.Faulted {
		t.Fatal("Result.Faulted not set on a faulted run")
	}

	var bufSeq, bufPar bytes.Buffer
	if err := regSeq.Snapshot().WriteJSON(&bufSeq); err != nil {
		t.Fatal(err)
	}
	if err := regPar.Snapshot().WriteJSON(&bufPar); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bufSeq.Bytes(), bufPar.Bytes()) {
		t.Fatalf("faulted telemetry reports differ between Workers:1 and Workers:4:\nseq:\n%s\npar:\n%s",
			bufSeq.String(), bufPar.String())
	}
	// The faults family must be present — and its injector consulted.
	if c := regSeq.Snapshot().Counter("faults.consulted"); c == nil || c.Value == 0 {
		t.Fatalf("faults.consulted = %+v, want > 0", c)
	}
}

// TestWardriveFaultsOffUnchanged pins the bit-identity guarantee the
// whole feature is built around: a run with a nil Faults config and a
// run with a present-but-disabled one must equal a run built before
// fault support existed — same census, same telemetry bytes.
func TestWardriveFaultsOffUnchanged(t *testing.T) {
	plain := parallelTestConfig()
	plain.Workers = 2
	regPlain := telemetry.NewRegistry(nil)
	plain.Metrics = regPlain

	disabled := parallelTestConfig()
	disabled.Workers = 2
	disabled.Faults = &faults.Config{} // present but disabled
	regDis := telemetry.NewRegistry(nil)
	disabled.Metrics = regDis

	resPlain := Run(plain)
	resDis := Run(disabled)
	if !reflect.DeepEqual(resPlain, resDis) {
		t.Fatal("a disabled faults config changed the census")
	}
	if resPlain.Faulted {
		t.Fatal("Result.Faulted set on a pristine run")
	}

	var bufPlain, bufDis bytes.Buffer
	if err := regPlain.Snapshot().WriteJSON(&bufPlain); err != nil {
		t.Fatal(err)
	}
	if err := regDis.Snapshot().WriteJSON(&bufDis); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bufPlain.Bytes(), bufDis.Bytes()) {
		t.Fatal("a disabled faults config changed the telemetry report")
	}
	// No faults family may leak into a pristine report.
	if c := regPlain.Snapshot().Counter("faults.consulted"); c != nil {
		t.Fatalf("faults.consulted registered on a pristine run: %+v", c)
	}
	if c := regPlain.Snapshot().Counter("core.fcs_errors"); c != nil {
		t.Fatalf("core.fcs_errors registered on a pristine run: %+v", c)
	}
}

// TestWardriveTotalACKLossInconclusive drives the census through a
// channel that eats every ACK/CTS: nothing can be verified, the drive
// still terminates, and discovered devices are reported inconclusive
// rather than silent — the paper's 100% response rate must degrade to
// "cannot tell", not to a fake 0% politeness result.
func TestWardriveTotalACKLossInconclusive(t *testing.T) {
	cfg := parallelTestConfig()
	cfg.Scale = 0.01
	cfg.Workers = 2
	cfg.Faults = &faults.Config{ACKLoss: 1}

	res := Run(cfg) // termination IS part of the assertion

	if res.Total() == 0 {
		t.Fatal("nothing discovered: data frames should survive ACK-only loss")
	}
	if res.TotalResponded() != 0 {
		t.Fatalf("%d devices verified through 100%% ACK loss", res.TotalResponded())
	}
	if res.Inconclusive < 1 {
		t.Fatalf("Inconclusive = %d, want lossy targets flagged", res.Inconclusive)
	}
	for _, d := range res.NonResponders {
		if d.Verdict == core.VerdictSilent && d.Probes > 0 {
			t.Fatalf("probed device %s reported silent on a channel that ate its answers", d.Spec.MAC)
		}
	}
}
