package world

import (
	"testing"

	"politewifi/internal/dot11"
	"politewifi/internal/eventsim"
	"politewifi/internal/oui"
)

func TestBuildCityFullScale(t *testing.T) {
	rng := eventsim.NewRNG(1)
	city := BuildCity(rng, 1.0)
	if city.TotalAPs != oui.TotalAPs {
		t.Fatalf("APs = %d, want %d", city.TotalAPs, oui.TotalAPs)
	}
	if city.TotalClients != oui.TotalClients {
		t.Fatalf("clients = %d, want %d", city.TotalClients, oui.TotalClients)
	}
	if len(city.Households) != oui.TotalAPs {
		t.Fatalf("households = %d", len(city.Households))
	}
	// All MACs unique.
	seen := make(map[dot11.MAC]bool)
	for _, h := range city.Households {
		if seen[h.AP.MAC] {
			t.Fatal("duplicate AP MAC")
		}
		seen[h.AP.MAC] = true
		for _, c := range h.Clients {
			if seen[c.MAC] {
				t.Fatal("duplicate client MAC")
			}
			seen[c.MAC] = true
		}
	}
	if len(seen) != oui.TotalDevices {
		t.Fatalf("total MACs = %d, want %d", len(seen), oui.TotalDevices)
	}
	// Vendors resolve through the DB.
	v, ok := city.DB.Lookup(city.Households[0].AP.MAC)
	if !ok || v != city.Households[0].AP.Vendor {
		t.Fatalf("vendor lookup = %q, %v", v, ok)
	}
}

func TestBuildCityScaled(t *testing.T) {
	rng := eventsim.NewRNG(2)
	city := BuildCity(rng, 0.01)
	if city.TotalAPs < 20 || city.TotalAPs > 80 {
		t.Fatalf("scaled APs = %d", city.TotalAPs)
	}
	if city.TotalClients < 5 || city.TotalClients > 40 {
		t.Fatalf("scaled clients = %d", city.TotalClients)
	}
}

func TestStopsPartition(t *testing.T) {
	rng := eventsim.NewRNG(3)
	city := BuildCity(rng, 0.02)
	stops := city.Stops(10)
	total := 0
	for _, s := range stops {
		if len(s.Households) > 10 {
			t.Fatalf("stop has %d households", len(s.Households))
		}
		total += len(s.Households)
	}
	if total != len(city.Households) {
		t.Fatalf("partition covers %d of %d", total, len(city.Households))
	}
	if stops[0].Pos.Z != 1.8 {
		t.Fatal("attacker antenna height wrong")
	}
}

func TestChannelsAssigned(t *testing.T) {
	rng := eventsim.NewRNG(4)
	city := BuildCity(rng, 0.05)
	chans := map[int]int{}
	bands := map[int]int{} // per-band household counts
	for _, h := range city.Households {
		chans[h.Channel]++
		bands[int(h.Band)]++
	}
	for _, ch := range []int{1, 6, 11, 36, 149} {
		if chans[ch] == 0 {
			t.Fatalf("channel %d unused: %v", ch, chans)
		}
	}
	for ch := range chans {
		switch ch {
		case 1, 6, 11, 36, 149:
		default:
			t.Fatalf("unexpected channel %d", ch)
		}
	}
	// Roughly a quarter of households on 5 GHz.
	total := len(city.Households)
	if five := bands[1]; five < total/8 || five > total/2 {
		t.Fatalf("5 GHz households = %d of %d, want ~25%%", five, total)
	}
}

// TestWardriveSmall runs a scaled-down drive end to end: every
// discovered device must respond (the §3 result), and discovery must
// cover nearly the whole population.
func TestWardriveSmall(t *testing.T) {
	cfg := Config{
		Seed:              77,
		Scale:             0.02, // ~76 APs, ~30 clients
		HouseholdsPerStop: 4,
		DwellPerChannel:   1200 * eventsim.Millisecond,
		VehicleSpeedKmh:   40,
	}
	res := Run(cfg)

	if res.Total() == 0 {
		t.Fatal("nothing discovered")
	}
	// The headline result: 100% of discovered devices respond.
	if res.TotalResponded() != res.Total() {
		t.Fatalf("responded %d of %d; non-responders: %+v",
			res.TotalResponded(), res.Total(), res.NonResponders)
	}
	// Coverage: nearly all devices should be discovered (all are
	// active and in range of their stop).
	city := BuildCity(eventsim.NewRNG(77), cfg.Scale)
	want := city.TotalAPs + city.TotalClients
	if res.Total() < want*85/100 {
		t.Fatalf("discovered %d of %d devices", res.Total(), want)
	}
	if res.APsDiscovered == 0 || res.ClientsDiscovered == 0 {
		t.Fatalf("APs=%d clients=%d", res.APsDiscovered, res.ClientsDiscovered)
	}
	// Vendor attribution populated.
	if len(res.APVendors) == 0 || len(res.ClientVendors) == 0 {
		t.Fatal("vendor maps empty")
	}
	if res.DriveMinutes <= 0 {
		t.Fatal("drive duration not modelled")
	}
	if res.Stops == 0 {
		t.Fatal("no stops")
	}
}

func TestRunDefaultsFilled(t *testing.T) {
	res := Run(Config{Seed: 5, Scale: 0.004, HouseholdsPerStop: 10,
		DwellPerChannel: 800 * eventsim.Millisecond})
	if res.Total() == 0 {
		t.Fatal("tiny run found nothing")
	}
}

func TestDefaultConfig(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Scale != 1.0 || cfg.HouseholdsPerStop == 0 || cfg.DwellPerChannel == 0 {
		t.Fatalf("default config: %+v", cfg)
	}
}
