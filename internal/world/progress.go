package world

import (
	"fmt"
	"io"
	"time"

	"politewifi/internal/eventsim"
)

// Progress is a snapshot of a running drive, delivered to the
// Config.Progress hook each time a stop's results are merged. Stops
// merge in street order, so consecutive callbacks carry Stop = 1, 2,
// ... regardless of which worker simulated which stop when.
type Progress struct {
	// Stop counts completed (merged) stops; Stops is the drive total.
	Stop  int
	Stops int
	// Census so far.
	Devices      int
	Responded    int
	Inconclusive int
	// SimTime is the cumulative virtual time simulated across the
	// completed stops.
	SimTime eventsim.Time
}

// ProgressFunc receives live drive progress. It is invoked from the
// merge path under its lock — stops arrive in order, but the hook
// should return quickly to avoid stalling workers.
type ProgressFunc func(Progress)

// NewProgressPrinter returns a ProgressFunc that renders a live
// one-line meter to w: stops done/total, devices found, the
// sim-vs-wall speed ratio, and an ETA extrapolated from the pace so
// far. The wall clock is injected by the caller — cmd binaries pass
// time.Now — so the simulation tree itself never reads host time and
// the politevet wallclock guarantee holds.
func NewProgressPrinter(w io.Writer, now func() time.Time) ProgressFunc {
	var start time.Time
	return func(p Progress) {
		if start.IsZero() {
			start = now()
		}
		elapsed := now().Sub(start)
		line := fmt.Sprintf("stop %d/%d  devices %d  responded %d",
			p.Stop, p.Stops, p.Devices, p.Responded)
		if p.Inconclusive > 0 {
			line += fmt.Sprintf("  inconclusive %d", p.Inconclusive)
		}
		if elapsed > 0 {
			rate := p.SimTime.Seconds() / elapsed.Seconds()
			line += fmt.Sprintf("  %.1fx sim/wall", rate)
			if p.Stop > 0 && p.Stop < p.Stops {
				eta := time.Duration(float64(elapsed) / float64(p.Stop) * float64(p.Stops-p.Stop))
				line += fmt.Sprintf("  eta %s", eta.Round(time.Second))
			}
		}
		fmt.Fprintf(w, "\r%-78s", line)
		if p.Stop == p.Stops {
			fmt.Fprintln(w)
		}
	}
}
