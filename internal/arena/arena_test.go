package arena

import "testing"

func TestAllocDisjoint(t *testing.T) {
	a := New()
	x := a.Alloc(16)
	y := a.Alloc(16)
	for i := range x {
		x[i] = 0xaa
	}
	for i := range y {
		y[i] = 0x55
	}
	for i, b := range x {
		if b != 0xaa {
			t.Fatalf("x[%d] clobbered: %#x", i, b)
		}
	}
	if cap(x) != 16 {
		t.Fatalf("cap(x) = %d, want 16 (appends must not overlap neighbours)", cap(x))
	}
}

func TestChunkReuseAcrossReset(t *testing.T) {
	a := New()
	for i := 0; i < 1000; i++ {
		_ = a.Alloc(200)
	}
	before := a.Footprint()
	if before == 0 {
		t.Fatal("no chunks allocated")
	}
	for round := 0; round < 5; round++ {
		a.Reset()
		for i := 0; i < 1000; i++ {
			buf := a.Alloc(200)
			if len(buf) != 200 {
				t.Fatalf("len = %d", len(buf))
			}
		}
	}
	if a.Footprint() != before {
		t.Fatalf("footprint grew across identical rounds: %d -> %d", before, a.Footprint())
	}
}

func TestOversizedAlloc(t *testing.T) {
	a := New()
	big := a.Alloc(3 * chunkSize)
	if len(big) != 3*chunkSize {
		t.Fatalf("len = %d", len(big))
	}
	small := a.Alloc(8)
	if len(small) != 8 {
		t.Fatalf("len = %d", len(small))
	}
	a.Reset()
	// The oversized chunk is reusable for another oversized request.
	before := a.Footprint()
	_ = a.Alloc(3 * chunkSize)
	if a.Footprint() != before {
		t.Fatalf("oversized chunk not reused: %d -> %d", before, a.Footprint())
	}
}

func BenchmarkAlloc(b *testing.B) {
	a := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if i%10000 == 0 {
			a.Reset()
		}
		_ = a.Alloc(64)
	}
}
