// Package arena provides a chunked bump allocator for per-stop frame
// buffers. A wardrive stop transmits tens of thousands of frames whose
// bytes all die together when the stop's simulation ends; allocating
// each copy individually made the garbage collector the second-largest
// line in the profile. An Arena hands out slices carved from large
// chunks and reclaims everything at once with Reset, keeping the
// chunks for the next stop.
//
// Arenas are not safe for concurrent use: each simulation owns one
// (the wardrive keeps a sync.Pool of them, one checked out per
// in-flight stop).
package arena

// chunkSize is the default chunk capacity. 64 KiB holds hundreds of
// 802.11 frames per chunk while staying small enough that an idle
// pooled arena does not pin meaningful memory.
const chunkSize = 64 << 10

// Arena is a chunked bump allocator. The zero value is ready to use.
type Arena struct {
	cur   []byte // active chunk; used counts the bytes handed out
	used  int
	spent [][]byte // exhausted chunks, reclaimed by Reset
	spare [][]byte // reclaimed chunks awaiting reuse

	footprint int // total bytes of chunk capacity ever allocated
}

// New returns an empty arena. Equivalent to new(Arena); provided so
// pool constructors read naturally.
func New() *Arena { return &Arena{} }

// Alloc returns an n-byte slice carved from the arena. The memory is
// NOT zeroed — chunks are recycled across Resets — so callers must
// overwrite every byte (the radio medium copies a full frame into it).
// The slice has capacity n: appending to it allocates off-arena rather
// than silently overwriting a neighbouring allocation.
func (a *Arena) Alloc(n int) []byte {
	if a.used+n > len(a.cur) {
		a.grow(n)
	}
	b := a.cur[a.used : a.used+n : a.used+n]
	a.used += n
	return b
}

// grow makes room for an n-byte allocation: reuse a spare chunk when
// one is big enough, otherwise allocate a fresh chunk (oversized
// requests get a dedicated chunk).
func (a *Arena) grow(n int) {
	if a.cur != nil {
		a.spent = append(a.spent, a.cur)
	}
	for i := len(a.spare) - 1; i >= 0; i-- {
		if len(a.spare[i]) >= n {
			a.cur = a.spare[i]
			a.spare = append(a.spare[:i], a.spare[i+1:]...)
			a.used = 0
			return
		}
	}
	size := chunkSize
	if n > size {
		size = n
	}
	a.cur = make([]byte, size)
	a.footprint += size
	a.used = 0
}

// Reset reclaims every allocation at once. The chunks are kept and
// reused by subsequent Allocs; previously returned slices must no
// longer be read or written.
func (a *Arena) Reset() {
	if a.cur != nil {
		a.spare = append(a.spare, a.cur)
		a.cur = nil
	}
	a.spare = append(a.spare, a.spent...)
	a.spent = a.spent[:0]
	a.used = 0
}

// Footprint reports the total chunk capacity the arena has allocated
// over its lifetime (retained across Resets).
func (a *Arena) Footprint() int { return a.footprint }
