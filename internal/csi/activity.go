package csi

import (
	"math"

	"politewifi/internal/eventsim"
)

// Activity produces the physical state of the victim device and any
// body scatterers as a function of local activity time. All
// activities are deterministic functions of time (noise comes from
// fixed-phase incommensurate sinusoids seeded at construction), so a
// replay reproduces the same CSI series exactly.
type Activity interface {
	Name() string
	State(t float64) State
}

// wobble is a deterministic pseudo-random smooth signal: the sum of
// three incommensurate sinusoids with instance-specific phases.
type wobble struct {
	f1, f2, f3 float64
	p1, p2, p3 float64
	amp        float64
}

func newWobble(rng *eventsim.RNG, baseFreq, amp float64) wobble {
	phase := func() float64 {
		if rng == nil {
			return 0
		}
		return rng.Uniform(0, 2*math.Pi)
	}
	return wobble{
		f1: baseFreq, f2: baseFreq * 1.618, f3: baseFreq * 2.414,
		p1: phase(), p2: phase(), p3: phase(),
		amp: amp,
	}
}

func (w wobble) at(t float64) float64 {
	return w.amp / 1.8 * (math.Sin(2*math.Pi*w.f1*t+w.p1) +
		0.6*math.Sin(2*math.Pi*w.f2*t+w.p2) +
		0.3*math.Sin(2*math.Pi*w.f3*t+w.p3))
}

// --- On ground --------------------------------------------------------

type onGround struct{}

// OnGround is the baseline: the device sits untouched and nobody is
// nearby. CSI is flat up to measurement noise (Figure 5, 0–9 s).
func OnGround() Activity { return onGround{} }

func (onGround) Name() string        { return "on-ground" }
func (onGround) State(float64) State { return State{} }

// --- Approach ---------------------------------------------------------

type approach struct {
	duration float64
	from, to float64 // distance from the device, meters
	sway     wobble
}

// Approach models a person walking toward the device, from `from` to
// `to` meters over `duration` seconds, with gait sway. The moving
// body is a strong scatterer, so CSI fluctuates as they close in.
func Approach(rng *eventsim.RNG, duration, from, to float64) Activity {
	return &approach{
		duration: duration, from: from, to: to,
		sway: newWobble(rng, 1.8, 0.06), // ~step cadence
	}
}

func (a *approach) Name() string { return "approach" }

func (a *approach) State(t float64) State {
	frac := t / a.duration
	if frac > 1 {
		frac = 1
	}
	d := a.from + (a.to-a.from)*frac
	return State{
		Bodies: []Scatterer{{
			Pos:          Vec3{-d, a.sway.at(t), 0.9 + 0.1*a.sway.at(t*1.3)},
			Reflectivity: 0.8,
		}},
	}
}

// --- Pick up ----------------------------------------------------------

type pickUp struct {
	duration float64
	jerk     wobble
	hand     wobble
}

// PickUp models lifting the device ~0.5 m with jerky hand motion —
// every propagation path shifts at once, producing the large
// fluctuations of Figure 5 around t≈9–22 s.
func PickUp(rng *eventsim.RNG, duration float64) Activity {
	return &pickUp{
		duration: duration,
		jerk:     newWobble(rng, 3.1, 0.05),
		hand:     newWobble(rng, 1.2, 0.03),
	}
}

func (p *pickUp) Name() string { return "pick-up" }

func (p *pickUp) State(t float64) State {
	frac := t / p.duration
	if frac > 1 {
		frac = 1
	}
	// Smooth lift profile with jerk superimposed.
	lift := 0.5 * (1 - math.Cos(math.Pi*frac)) / 2 * 2
	return State{
		DeviceOffset: Vec3{
			X: 0.1*frac + p.jerk.at(t),
			Y: p.jerk.at(t*1.7) + p.hand.at(t),
			Z: lift + p.jerk.at(t*0.9),
		},
		Bodies: []Scatterer{{
			Pos:          Vec3{-0.4, 0.1 + p.hand.at(t), 0.8},
			Reflectivity: 0.9,
		}},
	}
}

// --- Hold -------------------------------------------------------------

type hold struct {
	tremor wobble
	body   wobble
}

// Hold models the device held still in the hands: only physiological
// tremor (~1–2 Hz, millimeters). Distinct from typing — visible in
// Figure 5 as moderate, slow variation (t≈22–32 s).
func Hold(rng *eventsim.RNG) Activity {
	return &hold{
		// Tremor components at 1.0/1.6/2.4 Hz — all below the 2.5 Hz
		// band edge that distinguishes typing.
		tremor: newWobble(rng, 1.0, 0.004),
		body:   newWobble(rng, 0.25, 0.008), // breathing-coupled sway
	}
}

func (h *hold) Name() string { return "hold" }

func (h *hold) State(t float64) State {
	return State{
		DeviceOffset: Vec3{
			X: 0.1 + h.tremor.at(t),
			Z: 0.5 + h.tremor.at(t*1.3) + h.body.at(t),
		},
		Bodies: []Scatterer{{
			Pos:          Vec3{-0.4, 0.1, 0.8},
			Reflectivity: 0.9,
		}},
	}
}

// --- Typing -----------------------------------------------------------

type typing struct {
	base      *hold
	strikeHz  float64
	burstGate wobble
	finger    wobble
}

// Typing models keystrokes on the held device: finger strikes at
// ~4 Hz gated into bursts, each strike moving a small strong
// scatterer (the finger/hand) and nudging the device. CSI shows
// fast, spiky variation clearly distinct from Hold (Figure 5,
// t≈32–42 s; the basis of WindTalker-style keystroke inference).
func Typing(rng *eventsim.RNG) Activity {
	return &typing{
		base:      Hold(rng).(*hold),
		strikeHz:  3.5, // |sin|³ strike waveform → energy at 7 Hz
		burstGate: newWobble(rng, 0.33, 1),
		// Finger motion components at 3.5/5.7/8.4 Hz — above the
		// 2.5 Hz band edge.
		finger: newWobble(rng, 3.5, 0.015),
	}
}

func (ty *typing) Name() string { return "typing" }

// strikeEnvelope is 1 while a typing burst is active.
func (ty *typing) strikeEnvelope(t float64) float64 {
	if ty.burstGate.at(t) > -0.25 {
		return 1
	}
	return 0
}

func (ty *typing) State(t float64) State {
	st := ty.base.State(t)
	env := ty.strikeEnvelope(t)
	// Sharp strike waveform: rectified fast sinusoid.
	strike := math.Abs(math.Sin(2 * math.Pi * ty.strikeHz * t))
	strike = strike * strike * strike // sharpen
	dz := env * (ty.finger.at(t) + 0.010*strike)
	st.DeviceOffset.Z += dz
	st.DeviceOffset.X += env * ty.finger.at(t*1.9)
	// The striking hand hovers over the device and pumps with each key.
	st.Bodies = append(st.Bodies, Scatterer{
		Pos:          Vec3{-0.05, 0, 0.62 + 3*dz},
		Reflectivity: 0.7,
	})
	return st
}

// --- Walking (extension: whole-home sensing) --------------------------

type walking struct {
	radius float64
	speed  float64
	sway   wobble
}

// Walking models a person circling the device at the given radius —
// the motion source for the §4.3 whole-home sensing opportunity.
func Walking(rng *eventsim.RNG, radius, speedMps float64) Activity {
	return &walking{radius: radius, speed: speedMps, sway: newWobble(rng, 1.9, 0.05)}
}

func (w *walking) Name() string { return "walking" }

func (w *walking) State(t float64) State {
	ang := w.speed * t / w.radius
	return State{
		Bodies: []Scatterer{{
			Pos: Vec3{
				-w.radius * math.Cos(ang),
				w.radius*math.Sin(ang) + w.sway.at(t),
				0.9,
			},
			Reflectivity: 0.85,
		}},
	}
}

// --- Breathing (extension: vital-sign sensing) ------------------------

type breathing struct {
	rateHz float64
	depth  float64
}

// Breathing models a stationary person whose chest moves
// sinusoidally — the paper's open question about extracting vital
// signs from ACK CSI.
func Breathing(rateBPM float64) Activity {
	return &breathing{rateHz: rateBPM / 60, depth: 0.006}
}

func (b *breathing) Name() string { return "breathing" }

func (b *breathing) State(t float64) State {
	chest := b.depth * math.Sin(2*math.Pi*b.rateHz*t)
	return State{
		Bodies: []Scatterer{{
			Pos:          Vec3{-1.0 + chest, 0.2, 1.0},
			Reflectivity: 0.85,
		}},
	}
}

// Figure5Timeline is the activity script of the paper's Figure 5:
// device on the ground until 9 s, approached and picked up until
// 22 s, held until 32 s, typed on until 42 s, then idle again.
func Figure5Timeline(rng *eventsim.RNG) *Timeline {
	tl := &Timeline{}
	tl.Add(9, 13, Approach(rng, 4, 4, 0.5)).
		Add(13, 22, PickUp(rng, 9)).
		Add(22, 32, Hold(rng)).
		Add(32, 42, Typing(rng))
	return tl
}
