package csi

import (
	"math"

	"politewifi/internal/phy"
)

// Subcarrier fusion: single-subcarrier tracks are sensitive to
// frequency-selective fades (a subcarrier can sit in a null where
// motion barely registers). Projecting the 52-dimensional amplitude
// matrix onto its first principal component concentrates the common
// motion signal — the standard first step of serious WiFi-sensing
// pipelines. Power iteration suffices for the top component.

// AmplitudeMatrix extracts the samples × subcarriers amplitude matrix
// from a series.
func AmplitudeMatrix(s Series) [][]float64 {
	out := make([][]float64, len(s))
	for i, smp := range s {
		row := make([]float64, phy.NumSubcarriers)
		for k := range row {
			row[k] = smp.Amplitude(k)
		}
		out[i] = row
	}
	return out
}

// FirstPC projects the (samples × dims) matrix onto its first
// principal component, returning the per-sample score. Columns are
// mean-centered first; the component sign is normalised so that the
// projection correlates positively with the mean amplitude track.
func FirstPC(m [][]float64) []float64 {
	n := len(m)
	if n == 0 {
		return nil
	}
	dims := len(m[0])
	// Column means.
	mean := make([]float64, dims)
	for _, row := range m {
		for j, v := range row {
			mean[j] += v
		}
	}
	for j := range mean {
		mean[j] /= float64(n)
	}
	// Centered copy.
	c := make([][]float64, n)
	for i, row := range m {
		cr := make([]float64, dims)
		for j, v := range row {
			cr[j] = v - mean[j]
		}
		c[i] = cr
	}
	// Power iteration on Cᵀ·C (never materialised: v ← Cᵀ(Cv)).
	v := make([]float64, dims)
	for j := range v {
		v[j] = 1 / math.Sqrt(float64(dims))
	}
	tmp := make([]float64, n)
	for iter := 0; iter < 50; iter++ {
		for i, row := range c {
			s := 0.0
			for j, x := range row {
				s += x * v[j]
			}
			tmp[i] = s
		}
		next := make([]float64, dims)
		for i, row := range c {
			for j, x := range row {
				next[j] += x * tmp[i]
			}
		}
		norm := 0.0
		for _, x := range next {
			norm += x * x
		}
		norm = math.Sqrt(norm)
		if norm == 0 {
			break
		}
		delta := 0.0
		for j := range next {
			next[j] /= norm
			delta += math.Abs(next[j] - v[j])
		}
		v = next
		if delta < 1e-10 {
			break
		}
	}
	// Scores, sign-aligned with the mean track.
	scores := make([]float64, n)
	var corr float64
	for i, row := range c {
		s := 0.0
		rowMean := 0.0
		for j, x := range row {
			s += x * v[j]
			rowMean += x
		}
		scores[i] = s
		corr += s * rowMean
	}
	if corr < 0 {
		for i := range scores {
			scores[i] = -scores[i]
		}
	}
	return scores
}

// FusedAmplitude is the convenience path: first principal component
// of the series' amplitude matrix, shifted to a positive mean so the
// downstream normalised-std features behave like a single subcarrier
// track.
func FusedAmplitude(s Series) []float64 {
	scores := FirstPC(AmplitudeMatrix(s))
	if len(scores) == 0 {
		return nil
	}
	// Shift: scores are zero-mean; restore a carrier offset equal to
	// the mean overall amplitude so std/mean features stay meaningful.
	var total float64
	for _, smp := range s {
		for k := 0; k < phy.NumSubcarriers; k++ {
			total += smp.Amplitude(k)
		}
	}
	offset := total / float64(len(s)*phy.NumSubcarriers)
	out := make([]float64, len(scores))
	for i, v := range scores {
		out[i] = v + offset
	}
	return out
}
