// Package csi models channel state information the way the paper's
// keystroke-inference experiment measures it: the attacker injects
// fake frames, the victim's ACKs traverse a multipath channel, and
// the attacker extracts one complex value per OFDM subcarrier from
// each ACK. Human activity near the victim device perturbs the
// multipath geometry, which shows up as amplitude fluctuations —
// the signal of Figure 5.
//
// The package is pure computation: geometry → per-subcarrier channel
// response → time series → DSP → activity classification. The
// simulator's attack driver (package core) decides *when* samples are
// taken (one per received ACK).
package csi

import (
	"math"
	"math/cmplx"

	"politewifi/internal/eventsim"
	"politewifi/internal/phy"
)

// speedOfLight in m/s.
const speedOfLight = 299_792_458.0

// Vec3 is a point or displacement in meters.
type Vec3 struct {
	X, Y, Z float64
}

// Add returns v + w.
func (v Vec3) Add(w Vec3) Vec3 { return Vec3{v.X + w.X, v.Y + w.Y, v.Z + w.Z} }

// Sub returns v - w.
func (v Vec3) Sub(w Vec3) Vec3 { return Vec3{v.X - w.X, v.Y - w.Y, v.Z - w.Z} }

// Scale returns v scaled by s.
func (v Vec3) Scale(s float64) Vec3 { return Vec3{v.X * s, v.Y * s, v.Z * s} }

// Norm returns the Euclidean length.
func (v Vec3) Norm() float64 { return math.Sqrt(v.X*v.X + v.Y*v.Y + v.Z*v.Z) }

// Dist returns the distance to w.
func (v Vec3) Dist(w Vec3) float64 { return v.Sub(w).Norm() }

// Scatterer is a point reflector with a reflectivity coefficient.
type Scatterer struct {
	Pos          Vec3 // relative to the device's rest position
	Reflectivity float64
}

// Sample is one CSI measurement: the complex channel response per
// occupied subcarrier at measurement time T (seconds).
type Sample struct {
	T float64
	H [phy.NumSubcarriers]complex128
}

// Amplitude returns |H| for one CSI slot.
func (s Sample) Amplitude(slot int) float64 { return cmplx.Abs(s.H[slot]) }

// Phase returns arg(H) for one CSI slot.
func (s Sample) Phase(slot int) float64 { return cmplx.Phase(s.H[slot]) }

// Series is a CSI time series (one Sample per received ACK).
type Series []Sample

// Amplitudes extracts the amplitude track of one subcarrier.
func (s Series) Amplitudes(slot int) []float64 {
	out := make([]float64, len(s))
	for i, smp := range s {
		out[i] = smp.Amplitude(slot)
	}
	return out
}

// Times extracts the sample timestamps.
func (s Series) Times() []float64 {
	out := make([]float64, len(s))
	for i, smp := range s {
		out[i] = smp.T
	}
	return out
}

// MeanRate reports the average sampling rate in Hz.
func (s Series) MeanRate() float64 {
	if len(s) < 2 {
		return 0
	}
	span := s[len(s)-1].T - s[0].T
	if span <= 0 {
		return 0
	}
	return float64(len(s)-1) / span
}

// Scene is the physical environment between the attacker (Tx, which
// receives the ACKs — radio channels are reciprocal) and the victim
// device.
type Scene struct {
	// Attacker is the sensing radio's position.
	Attacker Vec3
	// DeviceRest is the victim device's rest position.
	DeviceRest Vec3
	// Walls are static virtual scatter points (room reflections).
	Walls []Scatterer
	// CenterHz is the channel center frequency.
	CenterHz float64
	// NoiseSigma is the relative measurement noise per subcarrier.
	NoiseSigma float64

	rng *eventsim.RNG
}

// NewScene builds the default through-the-wall sensing scene used by
// the Figure 5 experiment: attacker 8 m from the device on channel 6,
// four wall reflections, 2% measurement noise.
func NewScene(rng *eventsim.RNG) *Scene {
	return &Scene{
		Attacker:   Vec3{0, 0, 1},
		DeviceRest: Vec3{8, 0, 0.5},
		Walls: []Scatterer{
			{Pos: Vec3{4, 3, 1.5}, Reflectivity: 0.45},
			{Pos: Vec3{4, -3, 1.5}, Reflectivity: 0.4},
			{Pos: Vec3{-1, 1, 1}, Reflectivity: 0.3},
			{Pos: Vec3{9, 2, 2}, Reflectivity: 0.35},
		},
		CenterHz:   phy.ChannelFreqMHz(phy.Band2GHz, 6) * 1e6,
		NoiseSigma: 0.02,
		rng:        rng,
	}
}

// State is the instantaneous physical configuration produced by an
// activity: where the device is, and which body scatterers exist.
type State struct {
	// DeviceOffset displaces the device from its rest position
	// (picking the tablet up moves every propagation path at once).
	DeviceOffset Vec3
	// Bodies are body-part scatterers, positioned relative to the
	// device rest position.
	Bodies []Scatterer
}

// Measure computes the CSI sample for the given physical state at
// time t. Channel response per subcarrier k:
//
//	H(f_k) = Σ_paths a_p · exp(−j·2π·f_k·τ_p)
//
// with the line-of-sight path, one path per wall scatterer, and one
// per body scatterer; amplitudes follow 1/d spreading with a
// reflectivity factor for bounced paths.
func (sc *Scene) Measure(t float64, st State) Sample {
	dev := sc.DeviceRest.Add(st.DeviceOffset)

	type path struct {
		delay float64 // seconds
		gain  float64
	}
	var paths []path

	// Line of sight.
	dLOS := sc.Attacker.Dist(dev)
	if dLOS < 0.1 {
		dLOS = 0.1
	}
	paths = append(paths, path{dLOS / speedOfLight, 1 / dLOS})

	addBounce := func(p Vec3, refl float64) {
		d1 := sc.Attacker.Dist(p)
		d2 := p.Dist(dev)
		if d1 < 0.1 {
			d1 = 0.1
		}
		if d2 < 0.1 {
			d2 = 0.1
		}
		paths = append(paths, path{(d1 + d2) / speedOfLight, refl / (d1 * d2)})
	}
	for _, w := range sc.Walls {
		addBounce(w.Pos, w.Reflectivity)
	}
	for _, b := range st.Bodies {
		addBounce(sc.DeviceRest.Add(b.Pos), b.Reflectivity)
	}

	var s Sample
	s.T = t
	for slot := 0; slot < phy.NumSubcarriers; slot++ {
		f := sc.CenterHz + phy.SubcarrierOffsetHz(slot)
		var h complex128
		for _, p := range paths {
			phase := -2 * math.Pi * f * p.delay
			h += complex(p.gain, 0) * cmplx.Exp(complex(0, phase))
		}
		if sc.NoiseSigma > 0 && sc.rng != nil {
			h += complex(sc.rng.Normal(0, sc.NoiseSigma*cmplx.Abs(h)),
				sc.rng.Normal(0, sc.NoiseSigma*cmplx.Abs(h)))
		}
		s.H[slot] = h
	}
	return s
}

// Timeline schedules activities over wall-clock seconds.
type Timeline struct {
	entries []timelineEntry
}

type timelineEntry struct {
	start, end float64
	act        Activity
}

// Add appends an activity active during [start, end).
func (tl *Timeline) Add(start, end float64, act Activity) *Timeline {
	tl.entries = append(tl.entries, timelineEntry{start, end, act})
	return tl
}

// At returns the active activity and its local time, defaulting to
// OnGround outside every window.
func (tl *Timeline) At(t float64) (Activity, float64) {
	for _, e := range tl.entries {
		if t >= e.start && t < e.end {
			return e.act, t - e.start
		}
	}
	return OnGround(), 0
}

// Label returns the name of the activity active at t.
func (tl *Timeline) Label(t float64) string {
	act, _ := tl.At(t)
	return act.Name()
}

// MeasureAt samples the scene under the timeline's activity at time t.
func (sc *Scene) MeasureAt(tl *Timeline, t float64) Sample {
	act, local := tl.At(t)
	return sc.Measure(t, act.State(local))
}

// Collect samples the scene at the given rate over [0, duration),
// producing the full CSI series for a scripted experiment.
func (sc *Scene) Collect(tl *Timeline, rateHz, duration float64) Series {
	n := int(duration * rateHz)
	out := make(Series, 0, n)
	for i := 0; i < n; i++ {
		t := float64(i) / rateHz
		out = append(out, sc.MeasureAt(tl, t))
	}
	return out
}
