package csi

import (
	"math"

	"politewifi/internal/phy"
)

// Ranging from CSI phase: the follow-up work this paper spawned
// (Wi-Peep, "non-cooperative localization of WiFi devices") localises
// devices through walls by combining Polite WiFi with
// time-of-flight. This file implements the CSI half: the channel's
// phase slope across subcarriers encodes the dominant path delay,
//
//	H(f) ≈ a·exp(−j·2π·f·τ)  ⇒  dφ/df = −2π·τ  ⇒  d = c·τ.
//
// Multipath biases the estimate toward longer paths; averaging over
// samples and preferring the strongest-tap interpretation keeps the
// error within a couple of meters in LoS-dominant scenes.

// EstimateDelay recovers the dominant propagation delay (seconds)
// from one CSI sample by unwrapping the per-subcarrier phase and
// least-squares fitting its slope against subcarrier frequency.
func EstimateDelay(s Sample) float64 {
	n := phy.NumSubcarriers
	// Unwrap adjacent phase differences (valid while the true delay
	// is below 1/spacing = 3.2 µs ≈ 960 m of path).
	phases := make([]float64, n)
	prev := s.Phase(0)
	phases[0] = prev
	for k := 1; k < n; k++ {
		p := s.Phase(k)
		d := p - prev
		for d > math.Pi {
			d -= 2 * math.Pi
		}
		for d < -math.Pi {
			d += 2 * math.Pi
		}
		phases[k] = phases[k-1] + d
		prev = p
	}
	// Least-squares slope of phase vs frequency offset.
	var sx, sy, sxx, sxy float64
	for k := 0; k < n; k++ {
		x := phy.SubcarrierOffsetHz(k)
		y := phases[k]
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
	}
	nf := float64(n)
	denom := nf*sxx - sx*sx
	if denom == 0 {
		return 0
	}
	slope := (nf*sxy - sx*sy) / denom
	return -slope / (2 * math.Pi)
}

// EstimateRange converts a series of CSI samples into a distance
// estimate in meters: the median per-sample delay times the speed of
// light. The median resists the occasional sample where a reflection
// momentarily dominates.
func EstimateRange(series Series) float64 {
	if len(series) == 0 {
		return 0
	}
	delays := make([]float64, 0, len(series))
	for _, s := range series {
		if d := EstimateDelay(s); d > 0 {
			delays = append(delays, d)
		}
	}
	if len(delays) == 0 {
		return 0
	}
	return median(delays) * speedOfLight
}
