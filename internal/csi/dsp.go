package csi

import (
	"math"
	"sort"
)

// Hampel replaces outliers with the window median: for each point,
// if it deviates from the median of its window by more than nsigma
// scaled median absolute deviations it is replaced. Standard first
// stage of WiFi sensing pipelines (removes per-packet glitches).
func Hampel(x []float64, window int, nsigma float64) []float64 {
	if window < 1 || len(x) == 0 {
		return append([]float64(nil), x...)
	}
	out := make([]float64, len(x))
	buf := make([]float64, 0, 2*window+1)
	for i := range x {
		lo, hi := i-window, i+window+1
		if lo < 0 {
			lo = 0
		}
		if hi > len(x) {
			hi = len(x)
		}
		buf = append(buf[:0], x[lo:hi]...)
		med := median(buf)
		// MAD scaled to be consistent with a Gaussian sigma.
		for j := range buf {
			buf[j] = math.Abs(buf[j] - med)
		}
		mad := 1.4826 * median(buf)
		dev := math.Abs(x[i] - med)
		// MAD of 0 means the window is essentially constant: any
		// deviation at all is an outlier.
		if (mad > 0 && dev > nsigma*mad) || (mad == 0 && dev > 0) {
			out[i] = med
		} else {
			out[i] = x[i]
		}
	}
	return out
}

// median sorts buf in place and returns its median.
func median(buf []float64) float64 {
	sort.Float64s(buf)
	n := len(buf)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return buf[n/2]
	}
	return (buf[n/2-1] + buf[n/2]) / 2
}

// MovingAverage smooths x with a centered window of the given
// half-width (effective length 2w+1, truncated at the edges).
func MovingAverage(x []float64, w int) []float64 {
	if w < 1 || len(x) == 0 {
		return append([]float64(nil), x...)
	}
	out := make([]float64, len(x))
	for i := range x {
		lo, hi := i-w, i+w+1
		if lo < 0 {
			lo = 0
		}
		if hi > len(x) {
			hi = len(x)
		}
		sum := 0.0
		for _, v := range x[lo:hi] {
			sum += v
		}
		out[i] = sum / float64(hi-lo)
	}
	return out
}

// Mean returns the arithmetic mean.
func Mean(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range x {
		s += v
	}
	return s / float64(len(x))
}

// Variance returns the population variance.
func Variance(x []float64) float64 {
	if len(x) < 2 {
		return 0
	}
	m := Mean(x)
	s := 0.0
	for _, v := range x {
		d := v - m
		s += d * d
	}
	return s / float64(len(x))
}

// Std returns the population standard deviation.
func Std(x []float64) float64 { return math.Sqrt(Variance(x)) }

// SlidingStd computes the standard deviation in a centered window of
// half-width w at every point — the workhorse for activity
// segmentation.
func SlidingStd(x []float64, w int) []float64 {
	out := make([]float64, len(x))
	for i := range x {
		lo, hi := i-w, i+w+1
		if lo < 0 {
			lo = 0
		}
		if hi > len(x) {
			hi = len(x)
		}
		out[i] = Std(x[lo:hi])
	}
	return out
}

// Range returns max−min.
func Range(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	lo, hi := x[0], x[0]
	for _, v := range x {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return hi - lo
}

// Goertzel computes the signal power at frequency f (Hz) for a
// series sampled at fs — a single-bin DFT, ideal for probing a few
// frequencies (typing cadence, breathing rate) without a full FFT.
func Goertzel(x []float64, fs, f float64) float64 {
	if len(x) == 0 || fs <= 0 {
		return 0
	}
	w := 2 * math.Pi * f / fs
	coeff := 2 * math.Cos(w)
	var s0, s1, s2 float64
	for _, v := range x {
		s0 = v + coeff*s1 - s2
		s2, s1 = s1, s0
	}
	power := s1*s1 + s2*s2 - coeff*s1*s2
	return power / float64(len(x))
}

// DominantFrequency scans [fmin, fmax] in nbins steps and returns the
// frequency with the most Goertzel power, after mean removal.
func DominantFrequency(x []float64, fs, fmin, fmax float64, nbins int) float64 {
	if nbins < 2 || len(x) == 0 {
		return 0
	}
	centered := make([]float64, len(x))
	m := Mean(x)
	for i, v := range x {
		centered[i] = v - m
	}
	bestF, bestP := fmin, -1.0
	for i := 0; i < nbins; i++ {
		f := fmin + (fmax-fmin)*float64(i)/float64(nbins-1)
		p := Goertzel(centered, fs, f)
		if p > bestP {
			bestF, bestP = f, p
		}
	}
	return bestF
}

// Segment is a contiguous run classified as active or quiet.
type Segment struct {
	Start, End int // sample indices, [Start, End)
	Active     bool
}

// Segmentize splits a series into quiet/active runs by thresholding
// the sliding standard deviation at thresh (absolute units). Runs
// shorter than minLen samples are merged into their neighbour.
func Segmentize(x []float64, w int, thresh float64, minLen int) []Segment {
	if len(x) == 0 {
		return nil
	}
	stds := SlidingStd(x, w)
	active := make([]bool, len(x))
	for i, s := range stds {
		active[i] = s > thresh
	}
	// Run-length encode.
	var segs []Segment
	start := 0
	for i := 1; i <= len(active); i++ {
		if i == len(active) || active[i] != active[start] {
			segs = append(segs, Segment{Start: start, End: i, Active: active[start]})
			start = i
		}
	}
	// Merge short runs.
	merged := segs[:0]
	for _, s := range segs {
		if s.End-s.Start < minLen && len(merged) > 0 {
			merged[len(merged)-1].End = s.End
			continue
		}
		merged = append(merged, s)
	}
	// Coalesce neighbours with the same label after merging.
	out := merged[:0]
	for _, s := range merged {
		if len(out) > 0 && out[len(out)-1].Active == s.Active {
			out[len(out)-1].End = s.End
			continue
		}
		out = append(out, s)
	}
	return out
}

// CountBursts estimates the number of distinct activity bursts
// (e.g. keystrokes) by counting upward crossings of the sliding-std
// track over the threshold.
func CountBursts(x []float64, w int, thresh float64) int {
	stds := SlidingStd(x, w)
	count := 0
	above := false
	for _, s := range stds {
		if s > thresh && !above {
			count++
			above = true
		} else if s <= thresh {
			above = false
		}
	}
	return count
}
