package csi

import (
	"fmt"
	"math"
	"sort"
)

// Features summarises a CSI amplitude window for classification. The
// four features separate the Figure 5 activities: quiet windows have
// tiny Std; pick-up has huge Range; typing has high-frequency energy
// that holding lacks.
type Features struct {
	Std      float64 // overall variability
	Range    float64 // peak-to-peak swing
	DomFreq  float64 // dominant fluctuation frequency, Hz
	HighBand float64 // power above 2.5 Hz relative to total
}

// Extract computes features for an amplitude window sampled at fs,
// normalising out the mean amplitude so distance doesn't masquerade
// as activity.
func Extract(x []float64, fs float64) Features {
	m := Mean(x)
	if m == 0 {
		m = 1
	}
	norm := make([]float64, len(x))
	for i, v := range x {
		norm[i] = v / m
	}
	var high, total float64
	for f := 0.5; f <= 8; f += 0.5 {
		p := Goertzel(centered(norm), fs, f)
		total += p
		if f > 2.5 {
			high += p
		}
	}
	hb := 0.0
	if total > 0 {
		hb = high / total
	}
	return Features{
		Std:      Std(norm),
		Range:    Range(norm),
		DomFreq:  DominantFrequency(norm, fs, 0.2, 8, 40),
		HighBand: hb,
	}
}

func centered(x []float64) []float64 {
	m := Mean(x)
	out := make([]float64, len(x))
	for i, v := range x {
		out[i] = v - m
	}
	return out
}

// vec converts features to a slice for distance math.
func (f Features) vec() []float64 {
	return []float64{f.Std, f.Range, f.DomFreq, f.HighBand}
}

// Classifier is a nearest-centroid activity classifier over
// z-normalised feature space — deliberately simple: the paper's point
// is that the signal is there, not that the model is fancy.
type Classifier struct {
	labels    []string
	centroids [][]float64
	mean, std []float64
}

// Train builds a classifier from labelled amplitude windows.
func Train(samples map[string][][]float64, fs float64) *Classifier {
	labels := make([]string, 0, len(samples))
	for l := range samples {
		labels = append(labels, l)
	}
	sort.Strings(labels)

	var all [][]float64
	perLabel := make(map[string][][]float64)
	for _, l := range labels {
		for _, win := range samples[l] {
			v := Extract(win, fs).vec()
			perLabel[l] = append(perLabel[l], v)
			all = append(all, v)
		}
	}
	if len(all) == 0 {
		return &Classifier{}
	}
	dim := len(all[0])
	mean := make([]float64, dim)
	std := make([]float64, dim)
	for _, v := range all {
		for i, x := range v {
			mean[i] += x
		}
	}
	for i := range mean {
		mean[i] /= float64(len(all))
	}
	for _, v := range all {
		for i, x := range v {
			d := x - mean[i]
			std[i] += d * d
		}
	}
	for i := range std {
		std[i] = math.Sqrt(std[i] / float64(len(all)))
		if std[i] == 0 {
			std[i] = 1
		}
	}
	c := &Classifier{labels: labels, mean: mean, std: std}
	for _, l := range labels {
		cent := make([]float64, dim)
		for _, v := range perLabel[l] {
			for i, x := range v {
				cent[i] += (x - mean[i]) / std[i]
			}
		}
		for i := range cent {
			cent[i] /= float64(len(perLabel[l]))
		}
		c.centroids = append(c.centroids, cent)
	}
	return c
}

// Classify labels an amplitude window.
func (c *Classifier) Classify(x []float64, fs float64) string {
	if len(c.labels) == 0 {
		return ""
	}
	v := Extract(x, fs).vec()
	z := make([]float64, len(v))
	for i, x := range v {
		z[i] = (x - c.mean[i]) / c.std[i]
	}
	best, bestD := 0, math.MaxFloat64
	for i, cent := range c.centroids {
		d := 0.0
		for j := range cent {
			dd := z[j] - cent[j]
			d += dd * dd
		}
		if d < bestD {
			best, bestD = i, d
		}
	}
	return c.labels[best]
}

// Labels returns the trained class labels.
func (c *Classifier) Labels() []string { return append([]string(nil), c.labels...) }

// ConfusionMatrix evaluates the classifier on labelled windows and
// returns accuracy plus a label×label count matrix.
func (c *Classifier) ConfusionMatrix(test map[string][][]float64, fs float64) (float64, map[string]map[string]int) {
	cm := make(map[string]map[string]int)
	correct, total := 0, 0
	for truth, wins := range test {
		if cm[truth] == nil {
			cm[truth] = make(map[string]int)
		}
		for _, w := range wins {
			got := c.Classify(w, fs)
			cm[truth][got]++
			if got == truth {
				correct++
			}
			total++
		}
	}
	if total == 0 {
		return 0, cm
	}
	return float64(correct) / float64(total), cm
}

// String renders the classifier for debugging.
func (c *Classifier) String() string {
	return fmt.Sprintf("nearest-centroid over %v", c.labels)
}
