package csi

// Spectrogram and keystroke-timing extraction: the WindTalker-style
// analysis stage the paper's §4.1 threat builds toward. A short-time
// Goertzel bank turns the CSI amplitude track into a time×frequency
// energy map; keystroke instants appear as bursts of high-band
// energy.

// Spectrogram computes short-time band energies: for each window of
// `window` samples, advanced by `hop`, the Goertzel power at each of
// the probe frequencies (mean-removed per window). The result is
// frames × frequencies.
func Spectrogram(x []float64, fs float64, window, hop int, freqs []float64) [][]float64 {
	if window < 2 || hop < 1 || len(x) < window || len(freqs) == 0 {
		return nil
	}
	var out [][]float64
	for start := 0; start+window <= len(x); start += hop {
		seg := centered(x[start : start+window])
		row := make([]float64, len(freqs))
		for i, f := range freqs {
			row[i] = Goertzel(seg, fs, f)
		}
		out = append(out, row)
	}
	return out
}

// BandEnergy sums a spectrogram's rows over the probe frequencies in
// [fmin, fmax], producing a per-frame envelope.
func BandEnergy(spec [][]float64, freqs []float64, fmin, fmax float64) []float64 {
	out := make([]float64, len(spec))
	for t, row := range spec {
		for i, f := range freqs {
			if f >= fmin && f <= fmax {
				out[t] += row[i]
			}
		}
	}
	return out
}

// KeystrokeTimes estimates individual keystroke instants from a CSI
// amplitude track: high-band (>2.5 Hz) short-time energy is
// thresholded at k·median and each crossing run contributes its peak
// frame. Returned values are sample indices into x.
func KeystrokeTimes(x []float64, fs float64, k float64) []int {
	window := int(fs / 4) // 250 ms analysis frames
	hop := window / 4
	if window < 4 || hop < 1 {
		return nil
	}
	freqs := []float64{3, 4, 5, 6, 7}
	spec := Spectrogram(Hampel(x, 5, 3), fs, window, hop, freqs)
	env := BandEnergy(spec, freqs, 2.5, 8)
	if len(env) == 0 {
		return nil
	}
	med := median(append([]float64(nil), env...))
	thresh := k * med
	if thresh <= 0 {
		return nil
	}
	var times []int
	inBurst := false
	peakVal, peakAt := 0.0, 0
	for t, v := range env {
		if v > thresh {
			if !inBurst {
				inBurst = true
				peakVal, peakAt = v, t
			} else if v > peakVal {
				peakVal, peakAt = v, t
			}
			continue
		}
		if inBurst {
			inBurst = false
			times = append(times, peakAt*hop+window/2)
		}
	}
	if inBurst {
		times = append(times, peakAt*hop+window/2)
	}
	return times
}
