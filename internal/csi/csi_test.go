package csi

import (
	"math"
	"testing"
	"testing/quick"

	"politewifi/internal/eventsim"
	"politewifi/internal/phy"
)

func TestVec3(t *testing.T) {
	a := Vec3{1, 2, 3}
	b := Vec3{4, 6, 3}
	if a.Dist(b) != 5 {
		t.Fatalf("Dist = %v", a.Dist(b))
	}
	if a.Add(b).Sub(b) != a {
		t.Fatal("Add/Sub not inverse")
	}
	if (Vec3{2, 0, 0}).Scale(3).Norm() != 6 {
		t.Fatal("Scale/Norm wrong")
	}
}

func noiselessScene() *Scene {
	sc := NewScene(nil)
	sc.NoiseSigma = 0
	return sc
}

func TestMeasureDeterministic(t *testing.T) {
	sc := noiselessScene()
	s1 := sc.Measure(1.0, State{})
	s2 := sc.Measure(1.0, State{})
	for k := 0; k < phy.NumSubcarriers; k++ {
		if s1.H[k] != s2.H[k] {
			t.Fatal("noiseless measurement not deterministic")
		}
	}
	if s1.T != 1.0 {
		t.Fatalf("T = %v", s1.T)
	}
}

func TestMeasureFrequencySelectivity(t *testing.T) {
	// Multipath must make different subcarriers see different
	// amplitudes (frequency-selective fading) — otherwise CSI would
	// carry no more information than RSSI.
	sc := noiselessScene()
	s := sc.Measure(0, State{})
	amps := make([]float64, phy.NumSubcarriers)
	for k := range amps {
		amps[k] = s.Amplitude(k)
		if amps[k] <= 0 {
			t.Fatalf("subcarrier %d amplitude %v", k, amps[k])
		}
	}
	if Range(amps)/Mean(amps) < 0.01 {
		t.Fatal("channel is frequency-flat; multipath model broken")
	}
}

func TestDeviceMotionMovesChannel(t *testing.T) {
	sc := noiselessScene()
	base := sc.Measure(0, State{})
	moved := sc.Measure(0, State{DeviceOffset: Vec3{0, 0, 0.3}})
	diff := 0.0
	for k := 0; k < phy.NumSubcarriers; k++ {
		diff += math.Abs(base.Amplitude(k) - moved.Amplitude(k))
	}
	if diff == 0 {
		t.Fatal("moving the device did not change the CSI")
	}
}

func TestBodyScattererMovesChannel(t *testing.T) {
	sc := noiselessScene()
	base := sc.Measure(0, State{})
	withBody := sc.Measure(0, State{Bodies: []Scatterer{{Pos: Vec3{-1, 0, 1}, Reflectivity: 0.8}}})
	same := true
	for k := 0; k < phy.NumSubcarriers; k++ {
		if base.H[k] != withBody.H[k] {
			same = false
		}
	}
	if same {
		t.Fatal("body scatterer invisible in CSI")
	}
}

// TestFigure5Separation is the heart of E6: the four activity phases
// must be statistically separable on a single subcarrier's amplitude,
// as in the paper's Figure 5.
func TestFigure5Separation(t *testing.T) {
	rng := eventsim.NewRNG(17)
	sc := NewScene(rng.Fork())
	tl := Figure5Timeline(rng.Fork())
	series := sc.Collect(tl, 150, 45)
	if len(series) != 150*45 {
		t.Fatalf("series length = %d", len(series))
	}
	amp := series.Amplitudes(17) // the paper plots subcarrier 17

	window := func(from, to float64) []float64 {
		return amp[int(from*150):int(to*150)]
	}
	// Normalised stds per phase.
	phaseStd := func(x []float64) float64 { return Std(x) / Mean(x) }
	ground := phaseStd(window(0, 9))
	pickup := phaseStd(window(13, 22))
	holdW := phaseStd(window(23, 31))
	typeW := phaseStd(window(33, 41))

	if ground > 0.05 {
		t.Fatalf("on-ground std = %v, want near-flat", ground)
	}
	if pickup < 8*ground {
		t.Fatalf("pickup std %v not ≫ ground std %v", pickup, ground)
	}
	if typeW < 1.5*ground {
		t.Fatalf("typing std %v not clearly above ground %v", typeW, ground)
	}
	// Typing has more high-band energy than holding (the feature
	// keystroke inference keys on).
	fH := Extract(window(23, 31), 150)
	fT := Extract(window(33, 41), 150)
	if fT.HighBand <= fH.HighBand {
		t.Fatalf("typing high-band %v ≤ hold high-band %v", fT.HighBand, fH.HighBand)
	}
	_ = holdW
}

func TestSeriesHelpers(t *testing.T) {
	rng := eventsim.NewRNG(3)
	sc := NewScene(rng)
	tl := &Timeline{}
	series := sc.Collect(tl, 100, 2)
	if got := series.MeanRate(); math.Abs(got-100) > 1 {
		t.Fatalf("MeanRate = %v", got)
	}
	times := series.Times()
	if times[0] != 0 || times[1] != 0.01 {
		t.Fatalf("Times head = %v", times[:2])
	}
	var empty Series
	if empty.MeanRate() != 0 {
		t.Fatal("empty MeanRate should be 0")
	}
}

func TestTimelineAt(t *testing.T) {
	rng := eventsim.NewRNG(1)
	tl := Figure5Timeline(rng)
	cases := map[float64]string{
		1: "on-ground", 10: "approach", 15: "pick-up",
		25: "hold", 35: "typing", 44: "on-ground",
	}
	for tt, want := range cases {
		if got := tl.Label(tt); got != want {
			t.Errorf("Label(%v) = %q, want %q", tt, got, want)
		}
	}
	act, local := tl.At(33)
	if act.Name() != "typing" || math.Abs(local-1) > 1e-9 {
		t.Fatalf("At(33) = %s, %v", act.Name(), local)
	}
}

func TestHampel(t *testing.T) {
	x := []float64{1, 1, 1, 1, 50, 1, 1, 1, 1}
	y := Hampel(x, 3, 3)
	if y[4] != 1 {
		t.Fatalf("spike not removed: %v", y[4])
	}
	for i, v := range y {
		if i != 4 && v != x[i] {
			t.Fatalf("non-outlier %d modified", i)
		}
	}
	// Degenerate inputs.
	if got := Hampel(nil, 3, 3); len(got) != 0 {
		t.Fatal("Hampel(nil) not empty")
	}
	if got := Hampel([]float64{5}, 0, 3); got[0] != 5 {
		t.Fatal("window<1 should copy input")
	}
}

func TestMedian(t *testing.T) {
	if median([]float64{3, 1, 2}) != 2 {
		t.Fatal("odd median wrong")
	}
	if median([]float64{4, 1, 2, 3}) != 2.5 {
		t.Fatal("even median wrong")
	}
	if median(nil) != 0 {
		t.Fatal("empty median should be 0")
	}
}

func TestMovingAverage(t *testing.T) {
	x := []float64{0, 0, 9, 0, 0}
	y := MovingAverage(x, 1)
	if y[2] != 3 {
		t.Fatalf("center = %v, want 3", y[2])
	}
	if y[0] != 0 || y[4] != 0 {
		t.Fatalf("edges = %v, %v", y[0], y[4])
	}
	// Constant signal unchanged.
	c := MovingAverage([]float64{5, 5, 5, 5}, 2)
	for _, v := range c {
		if v != 5 {
			t.Fatal("constant signal changed")
		}
	}
}

func TestStatsBasics(t *testing.T) {
	x := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if Mean(x) != 5 {
		t.Fatalf("Mean = %v", Mean(x))
	}
	if Std(x) != 2 {
		t.Fatalf("Std = %v", Std(x))
	}
	if Range(x) != 7 {
		t.Fatalf("Range = %v", Range(x))
	}
	if Mean(nil) != 0 || Variance([]float64{1}) != 0 || Range(nil) != 0 {
		t.Fatal("degenerate stats wrong")
	}
}

func TestGoertzelPicksTone(t *testing.T) {
	fs := 100.0
	n := 500
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(2 * math.Pi * 7 * float64(i) / fs)
	}
	p7 := Goertzel(x, fs, 7)
	p3 := Goertzel(x, fs, 3)
	if p7 < 100*p3 {
		t.Fatalf("Goertzel: P(7Hz)=%v not ≫ P(3Hz)=%v", p7, p3)
	}
	if Goertzel(nil, fs, 7) != 0 {
		t.Fatal("empty Goertzel should be 0")
	}
}

func TestDominantFrequency(t *testing.T) {
	fs := 150.0
	n := 1500
	x := make([]float64, n)
	for i := range x {
		x[i] = 10 + 2*math.Sin(2*math.Pi*4.0*float64(i)/fs)
	}
	got := DominantFrequency(x, fs, 0.5, 8, 60)
	if math.Abs(got-4.0) > 0.3 {
		t.Fatalf("DominantFrequency = %v, want ~4", got)
	}
}

func TestBreathingRateRecoverable(t *testing.T) {
	// The paper's open question: vital signs from ACK CSI. 16 BPM
	// chest motion should appear as a ~0.27 Hz dominant frequency.
	rng := eventsim.NewRNG(5)
	sc := NewScene(rng.Fork())
	tl := (&Timeline{}).Add(0, 60, Breathing(16))
	series := sc.Collect(tl, 50, 60)
	amp := MovingAverage(series.Amplitudes(10), 5)
	got := DominantFrequency(amp, 50, 0.1, 1.0, 90)
	want := 16.0 / 60
	if math.Abs(got-want) > 0.06 {
		t.Fatalf("breathing dominant freq = %.3f Hz, want %.3f", got, want)
	}
}

func TestSegmentize(t *testing.T) {
	// Quiet, active, quiet.
	x := make([]float64, 300)
	for i := 100; i < 200; i++ {
		x[i] = math.Sin(float64(i)) * 5
	}
	segs := Segmentize(x, 10, 0.5, 20)
	if len(segs) != 3 {
		t.Fatalf("segments = %+v", segs)
	}
	if segs[0].Active || !segs[1].Active || segs[2].Active {
		t.Fatalf("segment labels = %+v", segs)
	}
	if segs[1].Start < 80 || segs[1].Start > 120 {
		t.Fatalf("active start = %d", segs[1].Start)
	}
	if Segmentize(nil, 5, 1, 3) != nil {
		t.Fatal("empty input should give nil")
	}
}

func TestCountBursts(t *testing.T) {
	x := make([]float64, 500)
	// Three bursts of oscillation.
	for _, burst := range []int{50, 200, 350} {
		for i := burst; i < burst+50; i++ {
			x[i] = 4 * math.Sin(float64(i))
		}
	}
	got := CountBursts(x, 8, 0.5)
	if got != 3 {
		t.Fatalf("CountBursts = %d, want 3", got)
	}
}

func TestClassifierSeparatesActivities(t *testing.T) {
	rng := eventsim.NewRNG(23)
	sc := NewScene(rng.Fork())
	fs := 150.0
	winLen := int(fs * 4)

	collect := func(act Activity, seed int64, secs float64) [][]float64 {
		scene := NewScene(eventsim.NewRNG(seed))
		tl := (&Timeline{}).Add(0, secs, act)
		series := scene.Collect(tl, fs, secs)
		amp := series.Amplitudes(17)
		var wins [][]float64
		for i := 0; i+winLen <= len(amp); i += winLen {
			wins = append(wins, amp[i:i+winLen])
		}
		return wins
	}
	train := map[string][][]float64{
		"on-ground": collect(OnGround(), 100, 24),
		"hold":      collect(Hold(eventsim.NewRNG(101)), 102, 24),
		"typing":    collect(Typing(eventsim.NewRNG(103)), 104, 24),
	}
	c := Train(train, fs)
	if len(c.Labels()) != 3 {
		t.Fatalf("labels = %v", c.Labels())
	}
	test := map[string][][]float64{
		"on-ground": collect(OnGround(), 200, 16),
		"hold":      collect(Hold(eventsim.NewRNG(201)), 202, 16),
		"typing":    collect(Typing(eventsim.NewRNG(203)), 204, 16),
	}
	acc, cm := c.ConfusionMatrix(test, fs)
	if acc < 0.75 {
		t.Fatalf("held-out accuracy = %.2f, confusion = %v", acc, cm)
	}
	_ = sc
}

func TestClassifierEmpty(t *testing.T) {
	c := Train(nil, 100)
	if c.Classify([]float64{1, 2, 3}, 100) != "" {
		t.Fatal("empty classifier should return empty label")
	}
	acc, _ := c.ConfusionMatrix(nil, 100)
	if acc != 0 {
		t.Fatal("empty confusion accuracy should be 0")
	}
}

// Property: Hampel never increases the range of a series.
func TestHampelRangeProperty(t *testing.T) {
	f := func(raw []int8) bool {
		if len(raw) == 0 {
			return true
		}
		x := make([]float64, len(raw))
		for i, v := range raw {
			x[i] = float64(v)
		}
		y := Hampel(x, 3, 3)
		return Range(y) <= Range(x)+1e-9 && len(y) == len(x)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: moving average preserves the mean of a constant-extended
// signal within tolerance and never exceeds the input range.
func TestMovingAverageBoundsProperty(t *testing.T) {
	f := func(raw []int8, w uint8) bool {
		if len(raw) == 0 {
			return true
		}
		x := make([]float64, len(raw))
		for i, v := range raw {
			x[i] = float64(v)
		}
		y := MovingAverage(x, int(w%10)+1)
		lo, hi := x[0], x[0]
		for _, v := range x {
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
		for _, v := range y {
			if v < lo-1e-9 || v > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMeasure(b *testing.B) {
	sc := noiselessScene()
	st := State{Bodies: []Scatterer{{Pos: Vec3{-1, 0, 1}, Reflectivity: 0.8}}}
	for i := 0; i < b.N; i++ {
		sc.Measure(float64(i)/150, st)
	}
}

func BenchmarkExtract(b *testing.B) {
	rng := eventsim.NewRNG(9)
	sc := NewScene(rng)
	tl := (&Timeline{}).Add(0, 10, Typing(eventsim.NewRNG(10)))
	amp := sc.Collect(tl, 150, 4).Amplitudes(17)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Extract(amp, 150)
	}
}

func TestEstimateDelayLoSOnly(t *testing.T) {
	// A scene with no walls: the delay estimate must match the LoS
	// distance almost exactly.
	sc := &Scene{
		Attacker:   Vec3{},
		DeviceRest: Vec3{X: 12},
		CenterHz:   phy.ChannelFreqMHz(phy.Band2GHz, 6) * 1e6,
	}
	s := sc.Measure(0, State{})
	d := EstimateDelay(s) * speedOfLight
	if math.Abs(d-12) > 0.2 {
		t.Fatalf("LoS-only range = %.2f m, want 12", d)
	}
}

func TestEstimateRangeWithMultipath(t *testing.T) {
	rng := eventsim.NewRNG(41)
	sc := NewScene(rng) // LoS 8.03 m plus wall reflections + noise
	tl := &Timeline{}
	series := sc.Collect(tl, 100, 3)
	got := EstimateRange(series)
	want := sc.Attacker.Dist(sc.DeviceRest)
	if math.Abs(got-want) > 3 {
		t.Fatalf("range = %.2f m, want ~%.2f", got, want)
	}
	if EstimateRange(nil) != 0 {
		t.Fatal("empty series should give 0")
	}
}

func TestSpectrogramShape(t *testing.T) {
	fs := 100.0
	x := make([]float64, 1000)
	for i := range x {
		x[i] = math.Sin(2 * math.Pi * 5 * float64(i) / fs)
	}
	freqs := []float64{2, 5, 8}
	spec := Spectrogram(x, fs, 100, 50, freqs)
	if len(spec) != 19 {
		t.Fatalf("frames = %d, want 19", len(spec))
	}
	// The 5 Hz bin dominates in every frame.
	for ti, row := range spec {
		if row[1] < 10*row[0] || row[1] < 10*row[2] {
			t.Fatalf("frame %d: 5 Hz bin not dominant: %v", ti, row)
		}
	}
	// Degenerate inputs.
	if Spectrogram(x[:10], fs, 100, 50, freqs) != nil {
		t.Fatal("short input should give nil")
	}
	if Spectrogram(x, fs, 1, 50, freqs) != nil {
		t.Fatal("tiny window should give nil")
	}
}

func TestBandEnergy(t *testing.T) {
	spec := [][]float64{{1, 2, 3}, {4, 5, 6}}
	freqs := []float64{1, 5, 9}
	env := BandEnergy(spec, freqs, 2, 6)
	if len(env) != 2 || env[0] != 2 || env[1] != 5 {
		t.Fatalf("env = %v", env)
	}
}

// TestKeystrokeTimesOnBursts: synthetic bursts of high-frequency
// oscillation are located in time.
func TestKeystrokeTimesOnBursts(t *testing.T) {
	fs := 150.0
	n := int(fs * 12)
	x := make([]float64, n)
	for i := range x {
		// Carrier with mild measurement noise (a perfectly constant
		// signal would trip Hampel's MAD=0 degenerate rule).
		x[i] = 10 + 0.02*math.Sin(13.7*float64(i))
	}
	trueBursts := []int{int(2 * fs), int(5 * fs), int(9 * fs)}
	for _, b := range trueBursts {
		for i := b; i < b+int(fs/2) && i < n; i++ {
			x[i] += 0.5 * math.Sin(2*math.Pi*5*float64(i)/fs)
		}
	}
	got := KeystrokeTimes(x, fs, 3)
	if len(got) != len(trueBursts) {
		t.Fatalf("detected %d bursts (%v), want %d", len(got), got, len(trueBursts))
	}
	for i, tb := range trueBursts {
		if d := got[i] - (tb + int(fs/4)); d < -int(fs) || d > int(fs) {
			t.Fatalf("burst %d located at %d, want near %d", i, got[i], tb)
		}
	}
}

// TestKeystrokeTimesOnRealTyping: the typing activity model produces
// a plausible keystroke count over a 10 s window.
func TestKeystrokeTimesOnRealTyping(t *testing.T) {
	rng := eventsim.NewRNG(77)
	sc := NewScene(rng.Fork())
	tl := (&Timeline{}).Add(0, 10, Typing(rng.Fork()))
	amp := sc.Collect(tl, 150, 10).Amplitudes(17)
	got := KeystrokeTimes(amp, 150, 2)
	// The burst gate is on roughly half the time with strikes at
	// ~3.5 Hz; crude detection should still find several distinct
	// events — and none on a quiet signal.
	if len(got) < 3 {
		t.Fatalf("typing bursts detected = %d, want several", len(got))
	}
	quiet := sc.Collect(&Timeline{}, 150, 10).Amplitudes(17)
	if q := KeystrokeTimes(quiet, 150, 6); len(q) > 2 {
		t.Fatalf("quiet signal produced %d keystrokes", len(q))
	}
}

func TestFirstPCRecoversCommonSignal(t *testing.T) {
	// Synthetic matrix: every column carries the same latent signal
	// with different gains plus small independent noise; the first PC
	// must correlate almost perfectly with the latent signal.
	n, dims := 400, 20
	latent := make([]float64, n)
	for i := range latent {
		latent[i] = math.Sin(2 * math.Pi * float64(i) / 50)
	}
	m := make([][]float64, n)
	for i := range m {
		row := make([]float64, dims)
		for j := range row {
			gain := 0.5 + float64(j)/float64(dims)
			noise := 0.05 * math.Sin(7.3*float64(i*dims+j))
			row[j] = gain*latent[i] + noise
		}
		m[i] = row
	}
	scores := FirstPC(m)
	if len(scores) != n {
		t.Fatalf("scores = %d", len(scores))
	}
	// Correlation with the latent signal.
	var sxy, sxx, syy float64
	for i := range latent {
		sxy += scores[i] * latent[i]
		sxx += scores[i] * scores[i]
		syy += latent[i] * latent[i]
	}
	corr := sxy / math.Sqrt(sxx*syy)
	if corr < 0.99 {
		t.Fatalf("PC/latent correlation = %.3f", corr)
	}
	if FirstPC(nil) != nil {
		t.Fatal("empty matrix should give nil")
	}
}

func TestFusedAmplitudeImprovesWorstSubcarrier(t *testing.T) {
	// Fusion must be at least as separable (pickup vs ground) as the
	// *worst* individual subcarrier, and positive everywhere.
	rng := eventsim.NewRNG(55)
	sc := NewScene(rng.Fork())
	tl := Figure5Timeline(rng.Fork())
	series := sc.Collect(tl, 100, 25)

	// Raw std ratio (pickup vs ground): meaningful for both raw
	// amplitude tracks and zero-mean PC scores.
	sep := func(x []float64) float64 {
		g := x[:9*100]
		p := x[13*100 : 22*100]
		return Std(p) / (Std(g) + 1e-12)
	}
	fused := FusedAmplitude(series)
	if len(fused) != len(series) {
		t.Fatalf("fused length = %d", len(fused))
	}
	fusedSep := sep(fused)
	worst := math.MaxFloat64
	for k := 0; k < phy.NumSubcarriers; k += 5 {
		if s := sep(series.Amplitudes(k)); s < worst {
			worst = s
		}
	}
	if fusedSep < worst {
		t.Fatalf("fused separation %.1f worse than worst subcarrier %.1f", fusedSep, worst)
	}
	if fusedSep < 5 {
		t.Fatalf("fused separation = %.1f, want strong", fusedSep)
	}
}

func TestAmplitudeMatrixShape(t *testing.T) {
	rng := eventsim.NewRNG(3)
	sc := NewScene(rng)
	series := sc.Collect(&Timeline{}, 50, 1)
	m := AmplitudeMatrix(series)
	if len(m) != len(series) || len(m[0]) != phy.NumSubcarriers {
		t.Fatalf("matrix shape = %dx%d", len(m), len(m[0]))
	}
}
