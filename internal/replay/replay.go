// Package replay serializes the medium's frame-log records (see
// internal/radio's FrameTx/CCACheck) as a versioned NDJSON format and
// feeds them back for deterministic replay.
//
// The format, politewifi.framelog/v1, is one JSON object per line: a
// head record carrying the schema, stop count and (optionally) the
// jobspec that produced the drive, followed by one record per medium
// event — a transmission's full lifecycle or a carrier-sense check —
// tagged with its 0-based stop index. Records within a stop appear in
// the exact order the stop's scheduler produced them; stops appear in
// stop order because the world's ordered merge flushes them that way.
//
// Replay is lockstep: each stop's Cursor hands records back to the
// medium one at a time and verifies that the live run asks for exactly
// what was recorded (same transmitter, same virtual time, same wire
// bytes, same rate). The first disagreement latches a positioned
// DivergenceError — record index and byte offset, à la stream.PosError
// — and the stop's medium goes inert so the drive still terminates.
package replay

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sync"

	"politewifi/internal/eventsim"
	"politewifi/internal/phy"
	"politewifi/internal/radio"
)

// Schema identifies the frame-log format version.
const Schema = "politewifi.framelog/v1"

// Head is the first record of a frame log.
type Head struct {
	Schema string `json:"schema"`
	// Stops is the number of stops the recorded drive completed.
	Stops int `json:"stops"`
	// Spec optionally embeds the jobspec JSON that produced the drive,
	// so `politewifi replay` can rebuild the identical world without a
	// side channel. Kept raw to avoid an import cycle.
	Spec json.RawMessage `json:"spec,omitempty"`
}

// Record is one frame-log line after the head: exactly one of TX or
// CCA is set.
type Record struct {
	// Stop is the 0-based stop index the event belongs to.
	Stop int `json:"stop"`
	// TX is a transmission lifecycle.
	TX *radio.FrameTx `json:"tx,omitempty"`
	// CCA is a carrier-sense consultation.
	CCA *radio.CCACheck `json:"cca,omitempty"`
}

// PosError is a frame-log parse failure pinned to its position: the
// 0-based line index (the head is line 0) and the byte offset the
// decoder had reached.
type PosError struct {
	Record int   // 0-based line index of the record being decoded
	Offset int64 // byte offset into the log where decoding stopped
	Err    error
}

func (e *PosError) Error() string {
	return fmt.Sprintf("framelog: record %d (byte offset %d): %v", e.Record, e.Offset, e.Err)
}

func (e *PosError) Unwrap() error { return e.Err }

// DivergenceError reports the first point where a replayed run
// disagreed with its frame log, positioned by stop, log line and byte
// offset so the offending record can be inspected directly.
type DivergenceError struct {
	Stop   int    // 0-based stop index
	Record int    // 0-based line index into the log (head is line 0)
	Offset int64  // byte offset of the record's end in the log
	Msg    string // what disagreed
}

func (e *DivergenceError) Error() string {
	return fmt.Sprintf("replay diverged: stop %d, record %d (byte offset %d): %s",
		e.Stop, e.Record, e.Offset, e.Msg)
}

// Recorder streams a drive's frame log as NDJSON. Like stream.Writer,
// the first underlying error latches — recording must never alter the
// drive result — and is reported by Err. A nil *Recorder is a valid
// no-op so callers can write unconditionally.
type Recorder struct {
	mu      sync.Mutex
	w       io.Writer
	spec    json.RawMessage
	began   bool
	err     error
	records int
}

// NewRecorder wraps w as a frame-log recorder.
func NewRecorder(w io.Writer) *Recorder {
	return &Recorder{w: w}
}

// SetSpec attaches the jobspec JSON to embed in the head record; call
// before the drive starts.
func (r *Recorder) SetSpec(spec json.RawMessage) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.spec = append(json.RawMessage(nil), spec...)
}

// Begin writes the head record. The world calls it once, with the
// drive's stop count, before any stop completes.
func (r *Recorder) Begin(stops int) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.began {
		r.fail(errors.New("framelog: Begin called twice"))
		return
	}
	r.began = true
	r.writeLine(Head{Schema: Schema, Stops: stops, Spec: r.spec})
}

// WriteStop appends one stop's records, in their recorded order. The
// world's ordered merge calls this stop-index-ascending, so the log
// bytes are identical at any worker count.
func (r *Recorder) WriteStop(sl *StopLog) {
	if r == nil || sl == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.began {
		r.fail(errors.New("framelog: WriteStop before Begin"))
		return
	}
	for i := range sl.recs {
		if !r.writeLine(&sl.recs[i]) {
			return
		}
		r.records++
	}
}

// writeLine marshals v as one NDJSON line; errors latch. Caller holds
// the mutex.
func (r *Recorder) writeLine(v any) bool {
	if r.err != nil {
		return false
	}
	buf, err := json.Marshal(v)
	if err != nil {
		r.fail(err)
		return false
	}
	buf = append(buf, '\n')
	if _, err := r.w.Write(buf); err != nil {
		r.fail(err)
		return false
	}
	return true
}

func (r *Recorder) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

// Err reports the latched error, if any.
func (r *Recorder) Err() error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.err
}

// Records reports how many event records were successfully written
// (head excluded).
func (r *Recorder) Records() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.records
}

// StopLog is one stop's in-memory shard of the frame log. It
// implements radio.FrameRecorder; the medium appends to it from
// scheduler context, and the world hands it to Recorder.WriteStop once
// the stop's sim loop has finished (RecordTx entries keep mutating
// until then).
type StopLog struct {
	stop int
	recs []Record
}

// NewStopLog creates the shard for the given 0-based stop index.
func NewStopLog(stop int) *StopLog {
	return &StopLog{stop: stop}
}

// RecordTx implements radio.FrameRecorder.
func (s *StopLog) RecordTx(tx *radio.FrameTx) {
	s.recs = append(s.recs, Record{Stop: s.stop, TX: tx})
}

// RecordCCA implements radio.FrameRecorder.
func (s *StopLog) RecordCCA(src string, at eventsim.Time, busy bool) {
	s.recs = append(s.recs, Record{Stop: s.stop, CCA: &radio.CCACheck{Src: src, At: at, Busy: busy}})
}

// Len reports the number of recorded events.
func (s *StopLog) Len() int { return len(s.recs) }

// logRec is a loaded record with its position in the file, so
// divergence errors can point at the byte.
type logRec struct {
	rec    Record
	index  int   // 0-based line index in the log (head is line 0)
	offset int64 // byte offset of the record's end
}

// Log is a loaded frame log ready to replay: per-stop record shards
// plus divergence bookkeeping shared by the cursors.
type Log struct {
	head  Head
	stops [][]logRec

	mu    sync.Mutex
	errs  map[int]error // first divergence per stop
	setup error         // pre-replay failure (spec/stop-count mismatch)
}

// Load parses a frame log. Head validation failures and malformed
// records return a *PosError; a loaded Log is structurally sound (every
// record is a well-formed TX xor CCA with an in-range stop index).
func Load(r io.Reader) (*Log, error) {
	dec := json.NewDecoder(r)
	var head Head
	if err := dec.Decode(&head); err != nil {
		if errors.Is(err, io.EOF) {
			err = errors.New("empty log")
		}
		return nil, &PosError{Record: 0, Offset: dec.InputOffset(), Err: err}
	}
	if head.Schema != Schema {
		return nil, &PosError{
			Record: 0, Offset: dec.InputOffset(),
			Err: fmt.Errorf("head schema %q (want %q)", head.Schema, Schema),
		}
	}
	if head.Stops < 0 {
		return nil, &PosError{
			Record: 0, Offset: dec.InputOffset(),
			Err: fmt.Errorf("head claims %d stops", head.Stops),
		}
	}
	l := &Log{
		head:  head,
		stops: make([][]logRec, head.Stops),
		errs:  make(map[int]error),
	}
	for n := 1; ; n++ {
		var rec Record
		if err := dec.Decode(&rec); err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			if errors.Is(err, io.ErrUnexpectedEOF) {
				err = fmt.Errorf("truncated record: %w", err)
			}
			return nil, &PosError{Record: n, Offset: dec.InputOffset(), Err: err}
		}
		off := dec.InputOffset()
		if rec.Stop < 0 || rec.Stop >= head.Stops {
			return nil, &PosError{
				Record: n, Offset: off,
				Err: fmt.Errorf("stop index %d out of range (head claims %d stops)", rec.Stop, head.Stops),
			}
		}
		if (rec.TX == nil) == (rec.CCA == nil) {
			return nil, &PosError{
				Record: n, Offset: off,
				Err: errors.New("record must carry exactly one of tx/cca"),
			}
		}
		l.stops[rec.Stop] = append(l.stops[rec.Stop], logRec{rec: rec, index: n, offset: off})
	}
	return l, nil
}

// Stops reports the head's stop count.
func (l *Log) Stops() int { return l.head.Stops }

// Spec returns the embedded jobspec JSON (nil if the recording did not
// attach one).
func (l *Log) Spec() json.RawMessage { return l.head.Spec }

// Records reports the total number of event records.
func (l *Log) Records() int {
	n := 0
	for _, s := range l.stops {
		n += len(s)
	}
	return n
}

// Fail latches a pre-replay failure (e.g. the replaying world built a
// different number of stops than the log records). First error wins.
func (l *Log) Fail(err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.setup == nil && err != nil {
		l.setup = err
	}
}

// latch records stop's first divergence.
func (l *Log) latch(stop int, err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, ok := l.errs[stop]; !ok {
		l.errs[stop] = err
	}
}

// Err reports the replay's first error in deterministic order: a setup
// failure if any, else the lowest-stop divergence. Nil means every
// cursor consumed its shard exactly.
func (l *Log) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.setup != nil {
		return l.setup
	}
	for stop := range l.stops {
		if err, ok := l.errs[stop]; ok {
			return err
		}
	}
	return nil
}

// Cursor returns the replay feed for one stop. Each cursor is used by
// a single stop's medium (one goroutine); divergences latch into the
// shared Log.
func (l *Log) Cursor(stop int) *Cursor {
	var recs []logRec
	if stop >= 0 && stop < len(l.stops) {
		recs = l.stops[stop]
	}
	return &Cursor{log: l, stop: stop, recs: recs}
}

// Cursor implements radio.FrameReplayer over one stop's records.
type Cursor struct {
	log  *Log
	stop int
	recs []logRec
	next int
	err  error
}

// diverge latches the cursor's first error, positioned at the record
// that disagreed (or the last record, when the log ran out).
func (c *Cursor) diverge(msg string) {
	if c.err != nil {
		return
	}
	index, offset := 0, int64(0)
	switch {
	case c.next > 0 && c.next <= len(c.recs):
		lr := c.recs[c.next-1]
		index, offset = lr.index, lr.offset
	case len(c.recs) > 0:
		lr := c.recs[len(c.recs)-1]
		index, offset = lr.index, lr.offset
	}
	c.err = &DivergenceError{Stop: c.stop, Record: index, Offset: offset, Msg: msg}
	c.log.latch(c.stop, c.err)
}

// Diverge implements radio.FrameReplayer.
func (c *Cursor) Diverge(format string, args ...any) {
	c.diverge(fmt.Sprintf(format, args...))
}

// take consumes the next record; nil after divergence or when the
// shard is exhausted (which latches).
func (c *Cursor) take(what string) *logRec {
	if c.err != nil {
		return nil
	}
	if c.next >= len(c.recs) {
		c.diverge(fmt.Sprintf("log exhausted after %d records: live run still wants %s", len(c.recs), what))
		return nil
	}
	lr := &c.recs[c.next]
	c.next++
	return lr
}

// ReplayTx implements radio.FrameReplayer.
func (c *Cursor) ReplayTx(src string, at eventsim.Time, data []byte, rate phy.Rate) (*radio.FrameTx, bool) {
	lr := c.take(fmt.Sprintf("a transmission from %q at %d", src, at))
	if lr == nil {
		return nil, false
	}
	tx := lr.rec.TX
	switch {
	case tx == nil:
		c.diverge(fmt.Sprintf("live run transmits from %q at %d, log recorded a cca check by %q", src, at, lr.rec.CCA.Src))
	case tx.Src != src:
		c.diverge(fmt.Sprintf("transmitter mismatch: live %q, log %q", src, tx.Src))
	case tx.Start != at:
		c.diverge(fmt.Sprintf("tx from %q: live at %d, log at %d", src, at, tx.Start))
	case tx.Rate != rate:
		c.diverge(fmt.Sprintf("tx from %q at %d: rate mismatch: live %s, log %s", src, at, rate, tx.Rate))
	case !bytes.Equal(tx.Data, data):
		c.diverge(fmt.Sprintf("tx from %q at %d: wire bytes differ (live %d bytes, log %d bytes)", src, at, len(data), len(tx.Data)))
	default:
		return tx, true
	}
	return nil, false
}

// ReplayCCA implements radio.FrameReplayer.
func (c *Cursor) ReplayCCA(src string, at eventsim.Time) (bool, bool) {
	lr := c.take(fmt.Sprintf("a cca check by %q at %d", src, at))
	if lr == nil {
		return false, false
	}
	cca := lr.rec.CCA
	switch {
	case cca == nil:
		c.diverge(fmt.Sprintf("live run checks cca at %q at %d, log recorded a transmission from %q", src, at, lr.rec.TX.Src))
	case cca.Src != src:
		c.diverge(fmt.Sprintf("cca radio mismatch: live %q, log %q", src, cca.Src))
	case cca.At != at:
		c.diverge(fmt.Sprintf("cca by %q: live at %d, log at %d", src, at, cca.At))
	default:
		return cca.Busy, true
	}
	return false, false
}

// Close validates that the stop consumed its whole shard: a live run
// that stopped asking for events mid-log is as much a divergence as
// one that asked for the wrong event. The world calls it after the
// stop's sim loop finishes.
func (c *Cursor) Close() {
	if c.err == nil && c.next < len(c.recs) {
		lr := c.recs[c.next]
		c.err = &DivergenceError{
			Stop: c.stop, Record: lr.index, Offset: lr.offset,
			Msg: fmt.Sprintf("live run ended after %d of %d recorded events", c.next, len(c.recs)),
		}
		c.log.latch(c.stop, c.err)
	}
}

// Err reports the cursor's latched divergence, if any.
func (c *Cursor) Err() error { return c.err }
