package oui

import (
	"fmt"
	"testing"

	"politewifi/internal/dot11"
	"politewifi/internal/eventsim"
)

func TestLookupWellKnown(t *testing.T) {
	db := NewDB()
	m := dot11.MustMAC("f0:18:98:12:34:56")
	v, ok := db.Lookup(m)
	if !ok || v != "Apple" {
		t.Fatalf("Lookup = %q, %v", v, ok)
	}
	if _, ok := db.Lookup(dot11.MustMAC("02:00:00:00:00:01")); ok {
		t.Fatal("unknown OUI resolved")
	}
}

func TestRegisterSynthetic(t *testing.T) {
	db := NewDB()
	o1 := db.Register("FrobnicateWireless")
	o2 := db.Register("FrobnicateWireless")
	if o1 != o2 {
		t.Fatal("re-registration changed the OUI")
	}
	if o1[0]&0x01 != 0 {
		t.Fatal("synthetic OUI has group bit set")
	}
	v, ok := db.Lookup(o1.WithSuffix(42))
	if !ok || v != "FrobnicateWireless" {
		t.Fatalf("Lookup synthetic = %q, %v", v, ok)
	}
	// Determinism across DB instances.
	if NewDB().Register("FrobnicateWireless") != o1 {
		t.Fatal("synthetic OUI not deterministic")
	}
}

func TestRegisterCollisionBump(t *testing.T) {
	db := NewDB()
	// Register many synthetic vendors; all prefixes must be unique.
	seen := map[dot11.OUI]bool{}
	for i := 0; i < 500; i++ {
		o := db.Register(fmt.Sprintf("Vendor-%d", i))
		if seen[o] {
			t.Fatalf("duplicate OUI %v", o)
		}
		seen[o] = true
	}
}

func TestMintMAC(t *testing.T) {
	db := NewDB()
	rng := eventsim.NewRNG(1)
	seen := map[dot11.MAC]bool{}
	for i := 0; i < 1000; i++ {
		m := db.MintMAC("Apple", rng)
		if v, _ := db.Lookup(m); v != "Apple" {
			t.Fatalf("minted MAC resolves to %q", v)
		}
		if !m.IsUnicast() {
			t.Fatal("minted MAC not unicast")
		}
		if seen[m] {
			t.Fatal("minted MAC collision within 1000 draws")
		}
		seen[m] = true
	}
}

func TestClientCensusExact(t *testing.T) {
	c := ClientCensus()
	if got := Sum(c); got != TotalClients {
		t.Fatalf("client census sum = %d, want %d", got, TotalClients)
	}
	if len(c) != ClientVendors {
		t.Fatalf("client vendor count = %d, want %d", len(c), ClientVendors)
	}
	// Head entries match Table 2 exactly.
	if c[0].Vendor != "Apple" || c[0].Count != 143 {
		t.Fatalf("head = %+v", c[0])
	}
	if c[19].Vendor != "Microsoft" || c[19].Count != 13 {
		t.Fatalf("entry 20 = %+v", c[19])
	}
	for _, e := range c {
		if e.Count < 1 {
			t.Fatalf("vendor %s has %d devices", e.Vendor, e.Count)
		}
	}
}

func TestAPCensusExact(t *testing.T) {
	c := APCensus()
	if got := Sum(c); got != TotalAPs {
		t.Fatalf("AP census sum = %d, want %d", got, TotalAPs)
	}
	if len(c) != APVendors {
		t.Fatalf("AP vendor count = %d, want %d", len(c), APVendors)
	}
	if c[0].Vendor != "Hitron" || c[0].Count != 723 {
		t.Fatalf("head = %+v", c[0])
	}
	if c[19].Vendor != "Apple" || c[19].Count != 19 {
		t.Fatalf("entry 20 = %+v", c[19])
	}
}

func TestTotalsMatchPaper(t *testing.T) {
	if TotalDevices != 5328 {
		t.Fatalf("total devices = %d, want 5328", TotalDevices)
	}
	// 186 vendors overall; some overlap between client and AP lists.
	if TotalVendors != 186 {
		t.Fatalf("total vendors = %d", TotalVendors)
	}
}

func TestTop(t *testing.T) {
	c := ClientCensus()
	top := Top(c, 5)
	if len(top) != 5 {
		t.Fatalf("Top(5) length = %d", len(top))
	}
	for i := 1; i < len(top); i++ {
		if top[i].Count > top[i-1].Count {
			t.Fatal("Top not sorted")
		}
	}
	if top[0].Vendor != "Apple" {
		t.Fatalf("top client vendor = %s", top[0].Vendor)
	}
	if got := Top(c, 10000); len(got) != len(c) {
		t.Fatal("Top with large n should clamp")
	}
}

func TestCensusDeterminism(t *testing.T) {
	a, b := ClientCensus(), ClientCensus()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("census not deterministic")
		}
	}
}

func TestVendorsList(t *testing.T) {
	db := NewDB()
	n := len(db.Vendors())
	db.Register("Newco")
	if len(db.Vendors()) != n+1 {
		t.Fatal("Vendors list did not grow")
	}
}
