// Package oui provides the vendor registry used by the wardrive
// study: organizationally-unique-identifier prefixes for every vendor
// in the paper's Table 2, MAC→vendor resolution, and the exact device
// census the large-scale experiment reproduces (1,523 clients from
// 147 vendors and 3,805 APs from 94 vendors).
package oui

import (
	"crypto/sha1"
	"fmt"
	"sort"

	"politewifi/internal/dot11"
	"politewifi/internal/eventsim"
)

// wellKnown maps the named Table 2 vendors to a representative real
// OUI prefix for realism; every other vendor gets a deterministic
// synthetic prefix.
var wellKnown = map[string]dot11.OUI{
	"Apple":        {0xf0, 0x18, 0x98},
	"Google":       {0xf4, 0xf5, 0xd8},
	"Intel":        {0x00, 0x1b, 0x77},
	"Hitron":       {0x68, 0x8f, 0x2e},
	"HP":           {0x3c, 0xd9, 0x2b},
	"Samsung":      {0x8c, 0x71, 0xf8},
	"Espressif":    {0xec, 0xfa, 0xbc},
	"Hon Hai":      {0x00, 0x1c, 0x26},
	"Amazon":       {0x44, 0x65, 0x0d},
	"Sagemcom":     {0x18, 0x62, 0x2c},
	"Liteon":       {0x20, 0x68, 0x9d},
	"AzureWave":    {0x74, 0xc6, 0x3b},
	"Sonos":        {0x5c, 0xaa, 0xfd},
	"Nest Labs":    {0x18, 0xb4, 0x30},
	"Murata":       {0x00, 0x26, 0xe8},
	"Belkin":       {0x94, 0x10, 0x3e},
	"TP-LINK":      {0x50, 0xc7, 0xbf},
	"Cisco":        {0x00, 0x1e, 0x14},
	"ecobee":       {0x44, 0x61, 0x32},
	"Microsoft":    {0x28, 0x18, 0x78},
	"Technicolor":  {0xfc, 0x52, 0x8d},
	"eero":         {0xf8, 0xbb, 0xbf},
	"Extreme N.":   {0x00, 0x04, 0x96},
	"D-Link":       {0x1c, 0x7e, 0xe5},
	"NETGEAR":      {0xa0, 0x40, 0xa0},
	"ASUSTek":      {0x2c, 0x56, 0xdc},
	"Aruba":        {0x24, 0xde, 0xc6},
	"SmartRG":      {0xd4, 0x04, 0xcd},
	"Ubiquiti N.":  {0x78, 0x8a, 0x20},
	"Zebra":        {0x48, 0xa4, 0x93},
	"Pegatron":     {0x60, 0x02, 0x92},
	"Mitsumi":      {0x00, 0x0b, 0x23},
	"Qualcomm":     {0x00, 0xa0, 0xc6},
	"Realtek":      {0x00, 0xe0, 0x4c},
	"Marvell":      {0x00, 0x50, 0x43},
	"Atheros":      {0x00, 0x03, 0x7f},
	"Ecobee3":      {0x44, 0x61, 0x33},
	"Logitech":     {0x00, 0x07, 0xee},
	"Blink":        {0x8c, 0x4c, 0xad},
	"MediaTek":     {0x00, 0x0c, 0xe7},
	"Broadcom":     {0x00, 0x10, 0x18},
	"Ruckus":       {0x24, 0xc9, 0xa1},
	"Mikrotik":     {0x4c, 0x5e, 0x0c},
	"Zyxel":        {0x5c, 0xe2, 0x8c},
	"Arris":        {0xfc, 0x91, 0x14},
	"Actiontec":    {0x10, 0x78, 0x5b},
	"Huawei":       {0x00, 0x18, 0x82},
	"Xiaomi":       {0x64, 0x09, 0x80},
	"LG":           {0x58, 0xa2, 0xb5},
	"Sony":         {0x30, 0x52, 0xcb},
	"Roku":         {0xb0, 0xa7, 0x37},
	"Wyze":         {0x2c, 0xaa, 0x8e},
	"Ring":         {0x34, 0x3e, 0xa4},
	"GoPro":        {0xd4, 0xd9, 0x19},
	"Garmin":       {0x10, 0xc6, 0xfc},
	"Nintendo":     {0x00, 0x1f, 0x32},
	"Canon":        {0x00, 0x1e, 0x8f},
	"Epson":        {0x64, 0xeb, 0x8c},
	"Brother":      {0x00, 0x80, 0x77},
	"Dell":         {0x18, 0xa9, 0x9b},
	"Lenovo":       {0x50, 0x7b, 0x9d},
	"Acer":         {0xc0, 0x98, 0x79},
	"Toshiba":      {0x00, 0x15, 0xb7},
	"Vizio":        {0xc4, 0xe0, 0x32},
	"Ecovacs":      {0xa0, 0x60, 0x90},
	"iRobot":       {0x50, 0x14, 0x79},
	"Honeywell":    {0x00, 0x40, 0x84},
	"Chamberlain":  {0x64, 0x52, 0x99},
	"Rachio":       {0x74, 0xc2, 0x46},
	"Lutron":       {0xb0, 0xce, 0x18},
	"Philips Hue":  {0x00, 0x17, 0x88},
	"Tuya":         {0x68, 0x57, 0x2d},
	"Shenzhen RF":  {0x00, 0x0e, 0xe8},
	"Quanta":       {0x00, 0x26, 0x9e},
	"Compal":       {0x00, 0x16, 0xd4},
	"Wistron":      {0x00, 0x16, 0xcf},
	"Universal E.": {0x48, 0x1d, 0x70},
	"Humax":        {0x00, 0x03, 0x78},
	"Vantiva":      {0x14, 0xed, 0xbb},
	"Calix":        {0x00, 0x25, 0x6d},
	"Adtran":       {0x00, 0xa0, 0xc8},
	"Plume":        {0x38, 0x8a, 0x06},
	"Airties":      {0x18, 0x28, 0x61},
}

// DB resolves MAC addresses to vendor names and mints addresses for
// the population generator.
type DB struct {
	byOUI    map[dot11.OUI]string
	byVendor map[string][]dot11.OUI
	names    []string
}

// NewDB builds the registry with the well-known prefixes preloaded.
func NewDB() *DB {
	db := &DB{
		byOUI:    make(map[dot11.OUI]string),
		byVendor: make(map[string][]dot11.OUI),
	}
	names := make([]string, 0, len(wellKnown))
	for name := range wellKnown {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		db.add(name, wellKnown[name])
	}
	return db
}

func (db *DB) add(vendor string, o dot11.OUI) {
	if _, taken := db.byOUI[o]; taken {
		panic(fmt.Sprintf("oui: prefix %s already registered", o))
	}
	db.byOUI[o] = vendor
	if _, known := db.byVendor[vendor]; !known {
		db.names = append(db.names, vendor)
	}
	db.byVendor[vendor] = append(db.byVendor[vendor], o)
}

// Register ensures the vendor exists, deriving a deterministic
// synthetic OUI when it is not a well-known one. Registering an
// existing vendor is a no-op. It returns the vendor's first prefix.
func (db *DB) Register(vendor string) dot11.OUI {
	if ouis, ok := db.byVendor[vendor]; ok {
		return ouis[0]
	}
	// Derive a stable unicast, globally-administered prefix from the
	// vendor name; bump until unique.
	sum := sha1.Sum([]byte(vendor))
	o := dot11.OUI{sum[0] &^ 0x03, sum[1], sum[2]}
	for {
		if _, taken := db.byOUI[o]; !taken {
			break
		}
		o[2]++
	}
	db.add(vendor, o)
	return o
}

// Lookup resolves a MAC address to its vendor.
func (db *DB) Lookup(m dot11.MAC) (string, bool) {
	v, ok := db.byOUI[m.OUI()]
	return v, ok
}

// Vendors lists the registered vendor names in registration order.
func (db *DB) Vendors() []string { return append([]string(nil), db.names...) }

// MintMAC creates a fresh device address for the vendor using the
// given random stream. The caller is responsible for deduplication
// (collisions in a 24-bit space across a few thousand devices are
// vanishingly rare but the wardrive world checks anyway).
func (db *DB) MintMAC(vendor string, rng *eventsim.RNG) dot11.MAC {
	o := db.Register(vendor)
	return o.WithSuffix(uint32(rng.Int63() & 0xffffff))
}

// CensusEntry is one vendor row of the Table 2 population.
type CensusEntry struct {
	Vendor string
	Count  int
}

// clientTop20 and apTop20 are the named rows of Table 2.
var clientTop20 = []CensusEntry{
	{"Apple", 143}, {"Google", 102}, {"Intel", 66}, {"Hitron", 65},
	{"HP", 63}, {"Samsung", 56}, {"Espressif", 47}, {"Hon Hai", 46},
	{"Amazon", 41}, {"Sagemcom", 38}, {"Liteon", 33}, {"AzureWave", 30},
	{"Sonos", 30}, {"Nest Labs", 27}, {"Murata", 24}, {"Belkin", 20},
	{"TP-LINK", 20}, {"Cisco", 16}, {"ecobee", 13}, {"Microsoft", 13},
}

var apTop20 = []CensusEntry{
	{"Hitron", 723}, {"Sagemcom", 601}, {"Technicolor", 410}, {"eero", 195},
	{"Extreme N.", 188}, {"Cisco", 156}, {"HP", 104}, {"TP-LINK", 101},
	{"Google", 80}, {"D-Link", 75}, {"NETGEAR", 69}, {"ASUSTek", 51},
	{"Aruba", 46}, {"SmartRG", 44}, {"Ubiquiti N.", 35}, {"Zebra", 35},
	{"Pegatron", 28}, {"Belkin", 25}, {"Mitsumi", 25}, {"Apple", 19},
}

// Totals from the paper's study.
const (
	// TotalClients is the number of client devices found (§3).
	TotalClients = 1523
	// TotalAPs is the number of access points found (§3).
	TotalAPs = 3805
	// ClientVendors is the number of distinct client vendors (§3).
	ClientVendors = 147
	// APVendors is the number of distinct AP vendors (§3).
	APVendors = 94
	// TotalDevices is the total census size (§3).
	TotalDevices = TotalClients + TotalAPs
	// TotalVendors is the number of distinct vendors overall (§3).
	TotalVendors = 186
)

// expandOthers distributes `others` devices across `vendors` synthetic
// vendors with a deterministic, roughly geometric tail so the head of
// the tail looks like real long-tail census data. Every synthetic
// vendor gets at least one device.
func expandOthers(prefix string, others, vendors int) []CensusEntry {
	out := make([]CensusEntry, vendors)
	counts := make([]int, vendors)
	remaining := others - vendors
	for i := range counts {
		counts[i] = 1
	}
	// Distribute the remainder proportionally to 1/(i+2) weights.
	var wsum float64
	weights := make([]float64, vendors)
	for i := range weights {
		weights[i] = 1 / float64(i+2)
		wsum += weights[i]
	}
	given := 0
	for i := range counts {
		extra := int(float64(remaining) * weights[i] / wsum)
		counts[i] += extra
		given += extra
	}
	// Hand out rounding leftovers one by one from the front.
	for i := 0; given < remaining; i = (i + 1) % vendors {
		counts[i]++
		given++
	}
	for i := range out {
		out[i] = CensusEntry{
			Vendor: fmt.Sprintf("%s-%03d", prefix, i+1),
			Count:  counts[i],
		}
	}
	return out
}

// ClientCensus returns the full client population: the 20 named
// vendors plus a synthetic long tail, summing to exactly 1,523
// devices across exactly 147 vendors.
func ClientCensus() []CensusEntry {
	named := 0
	for _, e := range clientTop20 {
		named += e.Count
	}
	out := append([]CensusEntry(nil), clientTop20...)
	return append(out, expandOthers("ClientVendor", TotalClients-named, ClientVendors-len(clientTop20))...)
}

// APCensus returns the full AP population: 20 named vendors plus the
// synthetic tail, summing to exactly 3,805 APs across 94 vendors.
func APCensus() []CensusEntry {
	named := 0
	for _, e := range apTop20 {
		named += e.Count
	}
	out := append([]CensusEntry(nil), apTop20...)
	return append(out, expandOthers("APVendor", TotalAPs-named, APVendors-len(apTop20))...)
}

// Top returns the n largest entries of a census, for rendering the
// Table 2 "top 20" view.
func Top(census []CensusEntry, n int) []CensusEntry {
	sorted := append([]CensusEntry(nil), census...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Count > sorted[j].Count })
	if n > len(sorted) {
		n = len(sorted)
	}
	return sorted[:n]
}

// Sum totals the device counts of a census.
func Sum(census []CensusEntry) int {
	total := 0
	for _, e := range census {
		total += e.Count
	}
	return total
}
