package fuzzer

import (
	"bytes"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"politewifi/internal/dot11"
	"politewifi/internal/eventsim"
	"politewifi/internal/jobspec"
	"politewifi/internal/replay"
)

var updateFixture = flag.Bool("update-fuzz-fixture", false, "regenerate testdata fixtures from a fresh campaign")

// TestFuzzCleanCampaign runs a short real campaign: with no tampering,
// both oracles must hold on every drawn scenario.
func TestFuzzCleanCampaign(t *testing.T) {
	var progress bytes.Buffer
	findings, err := Run(Options{Seed: 1, Iterations: 3, Out: &progress})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Fatalf("clean campaign produced findings:\n%s", progress.String())
	}
	if got := strings.Count(progress.String(), "iter "); got != 3 {
		t.Fatalf("progress log covered %d iterations, want 3:\n%s", got, progress.String())
	}
}

// tamperSeqPack re-introduces the unmasked-shift-before-pack bug class
// (the dot11.SequenceControl.Uint16 seed bug, fragment-field variant)
// at the recorder: it rewrites the first management/data frame's
// sequence-control bytes as a transmitter whose fragment counter
// overflowed its 4-bit field would have packed them — the overflow bit
// smears into the sequence number's low bit instead of wrapping.
func tamperSeqPack(recs []replay.Record) bool {
	for i := range recs {
		tx := recs[i].TX
		if tx == nil || len(tx.Data) < 24 {
			continue
		}
		fc := dot11.ParseFrameControl(uint16(tx.Data[0]) | uint16(tx.Data[1])<<8)
		if fc.Type != dot11.TypeManagement && fc.Type != dot11.TypeData {
			continue
		}
		old := uint16(tx.Data[22]) | uint16(tx.Data[23])<<8
		sc := dot11.ParseSequenceControl(old)
		buggy := uint16(sc.Fragment+0x10) | sc.Number<<4 //politevet:allow durwrap(deliberate reintroduction of the unmasked pack the fuzzer must catch)
		if buggy == old {
			continue
		}
		tx.Data[22] = byte(buggy)
		tx.Data[23] = byte(buggy >> 8)
		return true
	}
	return false
}

// TestFuzzFindsSeqPackBug points the fuzzer at a deliberately
// re-introduced seed bug (via the Tamper hook, so the shipped codec
// stays fixed) and requires it to (a) catch the divergence through the
// replay oracle, (b) shrink the scenario, and (c) emit a frame log
// small enough to commit as a fixture.
func TestFuzzFindsSeqPackBug(t *testing.T) {
	dir := t.TempDir()
	findings, err := Run(Options{Seed: 7, Iterations: 1, ArtifactDir: dir, Tamper: tamperSeqPack})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 {
		t.Fatalf("got %d findings, want 1", len(findings))
	}
	f := findings[0]
	if f.Oracle != "replay" {
		t.Fatalf("finding oracle %q, want replay", f.Oracle)
	}
	var de *replay.DivergenceError
	if !errors.As(f.Err, &de) {
		t.Fatalf("finding error %v, want a DivergenceError", f.Err)
	}
	if !strings.Contains(de.Msg, "wire bytes differ") {
		t.Fatalf("divergence %q does not blame the wire bytes", de.Msg)
	}
	if f.Records == 0 || f.Records > 20 {
		t.Fatalf("shrunk log has %d records, want 1..20", f.Records)
	}
	if f.Artifact == "" {
		t.Fatal("no artifact path recorded")
	}
	data, err := os.ReadFile(f.Artifact)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, f.Log) {
		t.Fatal("artifact file does not match the finding's log")
	}
	if _, err := os.Stat(filepath.Join(dir, "finding-0.spec.json")); err != nil {
		t.Fatal(err)
	}
}

// TestSeqPackRegressionFixture replays the committed shrunk frame log
// the campaign above produced. The fixture was recorded with the
// tampered (buggy) pack, so replaying it against today's fixed codec
// must diverge exactly where the fuzzer said it did — if the unmasked
// pack ever comes back, the recorder would produce these bytes again
// and record/replay would go quiet; this pins the detection.
func TestSeqPackRegressionFixture(t *testing.T) {
	path := filepath.Join("testdata", "seqpack_divergence.ndjson")
	if *updateFixture {
		findings, err := Run(Options{Seed: 7, Iterations: 1, Tamper: tamperSeqPack})
		if err != nil {
			t.Fatal(err)
		}
		if len(findings) != 1 || len(findings[0].Log) == 0 {
			t.Fatalf("campaign did not produce a log finding to commit")
		}
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, findings[0].Log, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update-fuzz-fixture to regenerate)", err)
	}
	log, err := replay.Load(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	spec, err := jobspec.Decode(bytes.NewReader(log.Spec()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := runLeg(spec, spec.Workers, eventsim.QueueWheel, false, log); err != nil {
		t.Fatal(err)
	}
	var de *replay.DivergenceError
	if err := log.Err(); !errors.As(err, &de) {
		t.Fatalf("fixture replay did not diverge (err %v): the buggy pack's bytes went undetected", err)
	}
	if !strings.Contains(de.Msg, "wire bytes differ") {
		t.Fatalf("fixture divergence %q does not blame the wire bytes", de.Msg)
	}
	if de.Record != len(splitLines(data))-1 {
		t.Fatalf("diverged at record line %d, want the log's last line %d", de.Record, len(splitLines(data))-1)
	}
}
