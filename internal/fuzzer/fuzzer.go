// Package fuzzer is the differential scenario fuzzer for the wardrive
// pipeline. Each iteration forks a fresh RNG stream, draws a random
// jobspec (tiny city, random fault mix, random attacker cadence,
// random worker count), and asserts two oracles over the drive:
//
//   - determinism: the same spec run at workers=1 on the timing wheel
//     and at a random worker count on a random event queue must produce
//     byte-identical flight-recorder streams, telemetry reports and
//     census results;
//   - record/replay: recording the drive into a politewifi.framelog/v1
//     frame log and replaying it must reproduce the recorded run byte
//     for byte, with the replay cursor consuming the log exactly.
//
// A failing iteration is shrunk greedily — spec knobs are reduced one
// at a time while the failure persists, then the frame log is truncated
// at the first divergence — so a finding lands as a minimal spec plus a
// frame log small enough to commit as a regression fixture.
package fuzzer

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"strings"

	"politewifi/internal/eventsim"
	"politewifi/internal/jobspec"
	"politewifi/internal/replay"
	"politewifi/internal/telemetry"
	"politewifi/internal/telemetry/stream"
	"politewifi/internal/world"
)

// Options parameterises one fuzzing campaign.
type Options struct {
	// Seed roots the campaign's RNG; equal seeds draw equal scenario
	// sequences.
	Seed int64
	// Iterations is the number of scenarios to draw (default 20).
	Iterations int
	// Out receives one progress line per iteration; nil is silent.
	Out io.Writer
	// ArtifactDir, when non-empty, receives the shrunk frame log and
	// spec of every finding (finding-<iteration>.ndjson / .spec.json).
	ArtifactDir string
	// Tamper, when set, mutates the recorded frame log's records before
	// the replay leg parses them and reports whether it changed
	// anything. It emulates a recorder-side encoding bug (the tests use
	// it to re-introduce the unmasked-shift-before-pack class) so the
	// replay oracle and the shrinker can be exercised against a known
	// defect without patching the codec.
	Tamper func(recs []replay.Record) bool
}

// Finding is one shrunk failure.
type Finding struct {
	// Iteration is the 0-based scenario index that failed.
	Iteration int
	// Oracle names the property that failed: "determinism" or "replay".
	Oracle string
	// Spec is the shrunk scenario.
	Spec jobspec.Spec
	// Err is the failure as seen on the shrunk scenario.
	Err error
	// Log is the shrunk frame log (replay findings only): head line
	// plus every record up to and including the first divergence.
	Log []byte
	// Records is the number of event records in Log.
	Records int
	// Artifact is the path the log was written to ("" if no
	// ArtifactDir was configured).
	Artifact string
}

// Run executes the campaign and returns every shrunk finding. The
// returned error reports campaign plumbing failures (unwritable
// artifacts), not findings.
func Run(opts Options) ([]Finding, error) {
	if opts.Iterations <= 0 {
		opts.Iterations = 20
	}
	root := eventsim.NewRNG(opts.Seed)
	var findings []Finding
	for i := 0; i < opts.Iterations; i++ {
		r := root.Fork()
		spec := randomSpec(r)
		qk := eventsim.QueueWheel
		if r.Coin(0.5) {
			qk = eventsim.QueueLegacyHeap
		}
		altWorkers := 1 + r.Intn(4)

		f, failed, err := runIteration(i, spec, qk, altWorkers, opts)
		if err != nil {
			return findings, err
		}
		if failed {
			findings = append(findings, f)
			logf(opts.Out, "iter %d: FAIL %s oracle — shrunk to %s (%d records): %v",
				i, f.Oracle, f.Spec, f.Records, f.Err)
			continue
		}
		logf(opts.Out, "iter %d: ok  %s queue=%s alt-workers=%d", i, spec, queueName(qk), altWorkers)
	}
	return findings, nil
}

func logf(w io.Writer, format string, args ...any) {
	if w != nil {
		fmt.Fprintf(w, format+"\n", args...)
	}
}

func queueName(qk eventsim.QueueKind) string {
	if qk == eventsim.QueueLegacyHeap {
		return "heap"
	}
	return "wheel"
}

// randomSpec draws one scenario. Cities are tiny (a couple of stops) so
// a campaign covers many fault/timing/worker combinations per second of
// wall clock.
func randomSpec(r *eventsim.RNG) jobspec.Spec {
	s := jobspec.Drive()
	s.Seed = r.Int63()
	s.Scale = 0.002 + float64(r.Intn(5))*0.001
	s.StopSize = 1 + r.Intn(4)
	s.DwellMS = 60 + 20*r.Intn(6)
	s.Workers = 1 + r.Intn(4)
	if r.Coin(0.5) {
		var parts []string
		if r.Coin(0.6) {
			parts = append(parts, fmt.Sprintf("loss=%.2f", r.Uniform(0.02, 0.30)))
		}
		if r.Coin(0.4) {
			parts = append(parts, fmt.Sprintf("ack=%.2f", r.Uniform(0.02, 0.20)))
		}
		if r.Coin(0.3) {
			parts = append(parts, fmt.Sprintf("jam=%.2f", r.Uniform(0.02, 0.15)))
		}
		if r.Coin(0.3) {
			parts = append(parts, fmt.Sprintf("deaf=%.2f", r.Uniform(0.02, 0.15)))
		}
		s.Faults = strings.Join(parts, ",")
	}
	if r.Coin(0.3) {
		s.ProbeIntervalUS = 500 + 250*r.Intn(10)
	}
	if r.Coin(0.3) {
		s.ScanIntervalMS = 10 + 10*r.Intn(10)
	}
	return s
}

// legOutput is everything one drive leg produces that the oracles
// compare byte for byte.
type legOutput struct {
	res     *world.Result
	report  []byte
	stream  []byte
	logData []byte // recorded frame log (recording legs only)
}

// runLeg executes one drive with full capture plumbing. Exactly one of
// record/log may be set: record captures a frame log, log replays one.
func runLeg(spec jobspec.Spec, workers int, qk eventsim.QueueKind, record bool, log *replay.Log) (legOutput, error) {
	cfg, err := spec.WorldConfig()
	if err != nil {
		return legOutput{}, err
	}
	cfg.Workers = workers
	cfg.Queue = qk
	reg := telemetry.NewRegistry(nil)
	cfg.Metrics = reg
	var streamBuf bytes.Buffer
	cfg.Stream = stream.NewWriter(&streamBuf)
	var logBuf bytes.Buffer
	var rec *replay.Recorder
	if record {
		rec = replay.NewRecorder(&logBuf)
		specJSON, err := json.Marshal(spec)
		if err != nil {
			return legOutput{}, err
		}
		rec.SetSpec(specJSON)
		cfg.Record = rec
	}
	cfg.Replay = log

	res := world.Run(cfg)
	if err := cfg.Stream.Err(); err != nil {
		return legOutput{}, fmt.Errorf("fuzzer: stream: %w", err)
	}
	if rec != nil {
		if err := rec.Err(); err != nil {
			return legOutput{}, fmt.Errorf("fuzzer: recorder: %w", err)
		}
	}
	var rep bytes.Buffer
	if err := reg.Snapshot().WriteJSON(&rep); err != nil {
		return legOutput{}, err
	}
	return legOutput{res: res, report: rep.Bytes(), stream: streamBuf.Bytes(), logData: logBuf.Bytes()}, nil
}

// compareLegs reports the first byte-level disagreement between two
// legs of the same spec.
func compareLegs(what string, a, b legOutput) error {
	if !bytes.Equal(a.stream, b.stream) {
		return fmt.Errorf("%s: flight-recorder streams differ (%d vs %d bytes)", what, len(a.stream), len(b.stream))
	}
	if !bytes.Equal(a.report, b.report) {
		return fmt.Errorf("%s: telemetry reports differ (%d vs %d bytes)", what, len(a.report), len(b.report))
	}
	if !reflect.DeepEqual(a.res, b.res) {
		return fmt.Errorf("%s: census results differ", what)
	}
	return nil
}

// checkDeterminism runs the spec twice — workers=1 on the wheel vs the
// drawn worker count on the drawn queue — and compares.
func checkDeterminism(spec jobspec.Spec, qk eventsim.QueueKind, altWorkers int) error {
	base, err := runLeg(spec, 1, eventsim.QueueWheel, false, nil)
	if err != nil {
		return err
	}
	alt, err := runLeg(spec, altWorkers, qk, false, nil)
	if err != nil {
		return err
	}
	return compareLegs(fmt.Sprintf("workers 1/wheel vs %d/%s", altWorkers, queueName(qk)), base, alt)
}

// replayFailure carries the evidence a failed record/replay check
// leaves behind: the (possibly tampered) log and where replay stopped
// trusting it.
type replayFailure struct {
	err       error
	logData   []byte
	truncLine int // line index of the diverging record; 0 = unknown
}

// checkReplay records the spec's drive, applies the tamper hook, and
// replays the log against a fresh live run of the same spec. Any byte
// difference or unconsumed log suffix is a failure.
func checkReplay(spec jobspec.Spec, opts Options) (*replayFailure, error) {
	recorded, err := runLeg(spec, spec.Workers, eventsim.QueueWheel, true, nil)
	if err != nil {
		return nil, err
	}
	logData := recorded.logData
	if opts.Tamper != nil {
		logData, err = tamperLog(logData, opts.Tamper)
		if err != nil {
			return nil, err
		}
	}
	log, err := replay.Load(bytes.NewReader(logData))
	if err != nil {
		return &replayFailure{err: err, logData: logData}, nil
	}
	replayed, err := runLeg(spec, spec.Workers, eventsim.QueueWheel, false, log)
	if err != nil {
		return nil, err
	}
	if err := log.Err(); err != nil {
		f := &replayFailure{err: err, logData: logData}
		var de *replay.DivergenceError
		if errors.As(err, &de) {
			f.truncLine = de.Record
		}
		return f, nil
	}
	if err := compareLegs("record vs replay", recorded, replayed); err != nil {
		return &replayFailure{err: err, logData: logData}, nil
	}
	return nil, nil
}

// tamperLog decodes the log's record lines, hands them to the hook, and
// re-encodes. The head line passes through untouched; an unchanged log
// is returned verbatim.
func tamperLog(logData []byte, tamper func([]replay.Record) bool) ([]byte, error) {
	lines := splitLines(logData)
	if len(lines) == 0 {
		return logData, nil
	}
	recs := make([]replay.Record, 0, len(lines)-1)
	for i, line := range lines[1:] {
		var rec replay.Record
		if err := json.Unmarshal(line, &rec); err != nil {
			return nil, fmt.Errorf("fuzzer: tamper: record line %d: %w", i+1, err)
		}
		recs = append(recs, rec)
	}
	if !tamper(recs) {
		return logData, nil
	}
	var out bytes.Buffer
	out.Write(lines[0])
	out.WriteByte('\n')
	for _, rec := range recs {
		b, err := json.Marshal(rec)
		if err != nil {
			return nil, err
		}
		out.Write(b)
		out.WriteByte('\n')
	}
	return out.Bytes(), nil
}

// splitLines splits NDJSON into its non-empty lines.
func splitLines(data []byte) [][]byte {
	var lines [][]byte
	for _, line := range bytes.Split(data, []byte("\n")) {
		if len(line) > 0 {
			lines = append(lines, line)
		}
	}
	return lines
}

// runIteration evaluates both oracles for one scenario and shrinks the
// first failure.
func runIteration(iter int, spec jobspec.Spec, qk eventsim.QueueKind, altWorkers int, opts Options) (Finding, bool, error) {
	if err := checkDeterminism(spec, qk, altWorkers); err != nil {
		shrunk, lastErr := shrinkSpec(spec, func(s jobspec.Spec) error {
			return checkDeterminism(s, qk, altWorkers)
		})
		f := Finding{Iteration: iter, Oracle: "determinism", Spec: shrunk, Err: lastErr}
		return f, true, writeArtifacts(&f, opts)
	}

	fail, err := checkReplay(spec, opts)
	if err != nil {
		return Finding{}, false, err
	}
	if fail == nil {
		return Finding{}, false, nil
	}
	var last *replayFailure
	shrunk, _ := shrinkSpec(spec, func(s jobspec.Spec) error {
		rf, err := checkReplay(s, opts)
		if err != nil || rf == nil {
			return nil // plumbing errors don't count as the bug persisting
		}
		last = rf
		return rf.err
	})
	if last == nil {
		last = fail
	}
	logData := truncateLog(last.logData, last.truncLine)
	f := Finding{
		Iteration: iter,
		Oracle:    "replay",
		Spec:      shrunk,
		Err:       last.err,
		Log:       logData,
		Records:   max(0, len(splitLines(logData))-1),
	}
	return f, true, writeArtifacts(&f, opts)
}

// shrinkSpec greedily reduces the spec one knob at a time, keeping each
// reduction that still fails, until a full pass accepts nothing. It
// returns the shrunk spec and the failure observed on it.
func shrinkSpec(spec jobspec.Spec, fails func(jobspec.Spec) error) (jobspec.Spec, error) {
	lastErr := fails(spec)
	if lastErr == nil {
		// The failure did not reproduce on a re-run; report the
		// original spec (a flaky finding is itself worth seeing).
		return spec, errors.New("failure did not reproduce during shrinking")
	}
	reductions := []func(*jobspec.Spec) bool{
		func(s *jobspec.Spec) bool { return replaceInt(&s.Workers, 1) },
		func(s *jobspec.Spec) bool { return replaceString(&s.Faults, "") },
		func(s *jobspec.Spec) bool { return replaceInt(&s.ProbeIntervalUS, 0) },
		func(s *jobspec.Spec) bool { return replaceInt(&s.ScanIntervalMS, 0) },
		func(s *jobspec.Spec) bool { return replaceInt(&s.StopSize, 1) },
		func(s *jobspec.Spec) bool {
			if s.Scale <= 0.002 {
				return false
			}
			s.Scale = max(0.002, s.Scale/2)
			return true
		},
		func(s *jobspec.Spec) bool {
			if s.DwellMS <= 40 {
				return false
			}
			s.DwellMS = max(40, s.DwellMS/2)
			return true
		},
	}
	for changed := true; changed; {
		changed = false
		for _, reduce := range reductions {
			candidate := spec
			if !reduce(&candidate) {
				continue
			}
			if err := fails(candidate); err != nil {
				spec, lastErr = candidate, err
				changed = true
			}
		}
	}
	return spec, lastErr
}

func replaceInt(p *int, v int) bool {
	if *p == v {
		return false
	}
	*p = v
	return true
}

func replaceString(p *string, v string) bool {
	if *p == v {
		return false
	}
	*p = v
	return true
}

// truncateLog keeps the head plus every record up to and including the
// diverging line; truncLine 0 (no position) keeps the whole log.
func truncateLog(logData []byte, truncLine int) []byte {
	if truncLine <= 0 {
		return logData
	}
	lines := splitLines(logData)
	if truncLine >= len(lines) {
		return logData
	}
	var out bytes.Buffer
	for _, line := range lines[:truncLine+1] {
		out.Write(line)
		out.WriteByte('\n')
	}
	return out.Bytes()
}

// writeArtifacts persists a finding's shrunk log and spec.
func writeArtifacts(f *Finding, opts Options) error {
	if opts.ArtifactDir == "" {
		return nil
	}
	if err := os.MkdirAll(opts.ArtifactDir, 0o755); err != nil {
		return err
	}
	specJSON, err := json.MarshalIndent(f.Spec, "", "  ")
	if err != nil {
		return err
	}
	specPath := filepath.Join(opts.ArtifactDir, fmt.Sprintf("finding-%d.spec.json", f.Iteration))
	if err := os.WriteFile(specPath, append(specJSON, '\n'), 0o644); err != nil {
		return err
	}
	if len(f.Log) > 0 {
		logPath := filepath.Join(opts.ArtifactDir, fmt.Sprintf("finding-%d.ndjson", f.Iteration))
		if err := os.WriteFile(logPath, f.Log, 0o644); err != nil {
			return err
		}
		f.Artifact = logPath
	} else {
		f.Artifact = specPath
	}
	return nil
}
